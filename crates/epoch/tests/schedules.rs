//! Deterministic schedule exploration of the quiescence barriers.
//!
//! Each test runs real readers and writers over an [`EpochSet`] under
//! `sched::Scheduler`: one logical thread proceeds at a time and a
//! seeded RNG picks who moves at every instrumented step, so one seed IS
//! one interleaving. A barrier that waits when it must not shows up as a
//! step-budget panic carrying the seed; a barrier that returns when it
//! must not shows up as an assertion failure. [`sched::explore`] prints
//! the reproducing seed either way.
//!
//! The property tests at the bottom pin the fair barrier's wait-set rule
//! itself (via [`EpochSet::fair_wait_set`]): wait on exactly the readers
//! that are inside a critical section *and* recorded a version older
//! than the writer's.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use epoch::EpochSet;
use proptest::prelude::*;

/// RCU grace periods: a writer may only reclaim (poison) a buffer after
/// `synchronize` — no schedule may let a reader observe poisoned memory.
fn grace_period_schedule(seed: u64) {
    const READERS: usize = 3;
    const WRITER: usize = READERS;
    const POISON: u64 = u64::MAX;
    let epochs = Arc::new(EpochSet::new(READERS + 1));
    let bufs: Arc<[AtomicU64; 2]> = Arc::new([AtomicU64::new(50), AtomicU64::new(0)]);
    let current = Arc::new(AtomicUsize::new(0));

    let mut s = sched::Scheduler::new(seed);
    for tid in 0..READERS {
        let epochs = Arc::clone(&epochs);
        let bufs = Arc::clone(&bufs);
        let current = Arc::clone(&current);
        s.spawn(move || {
            for _ in 0..3 {
                epochs.enter(tid);
                sched::yield_point();
                let idx = current.load(Ordering::SeqCst);
                sched::yield_point();
                let v = bufs[idx].load(Ordering::SeqCst);
                assert_ne!(v, POISON, "reader observed a reclaimed buffer");
                epochs.exit(tid);
                sched::yield_point();
            }
        });
    }
    {
        let epochs = Arc::clone(&epochs);
        let bufs = Arc::clone(&bufs);
        let current = Arc::clone(&current);
        s.spawn(move || {
            for round in 0..3u64 {
                let old = current.load(Ordering::SeqCst);
                let new = 1 - old;
                bufs[new].store(100 + round, Ordering::SeqCst);
                current.store(new, Ordering::SeqCst);
                // Readers snapshotted inside may still hold `old`; only
                // after the grace period may it be reclaimed.
                epochs.synchronize(Some(WRITER));
                bufs[old].store(POISON, Ordering::SeqCst);
            }
        });
    }
    s.run();
}

#[test]
fn grace_period_schedules() {
    sched::explore("epoch-grace-period", 0..400, grace_period_schedule);
}

/// Single-pass quiescence (§3.3): sound exactly because the writer's
/// "lock" blocks new readers. The writer then updates two words
/// non-atomically; a reader overlapping the update would see a torn pair.
fn blocked_readers_schedule(seed: u64) {
    const READERS: usize = 2;
    const WRITER: usize = READERS;
    let epochs = Arc::new(EpochSet::new(READERS + 1));
    let lock = Arc::new(AtomicBool::new(false));
    let data: Arc<[AtomicU64; 2]> = Arc::new([AtomicU64::new(0), AtomicU64::new(0)]);

    let mut s = sched::Scheduler::new(seed);
    for tid in 0..READERS {
        let epochs = Arc::clone(&epochs);
        let lock = Arc::clone(&lock);
        let data = Arc::clone(&data);
        s.spawn(move || {
            for _ in 0..3 {
                // Retreat-style entry: readers defer to the lock holder,
                // which is what legitimizes the single-pass barrier.
                loop {
                    epochs.enter(tid);
                    if !lock.load(Ordering::SeqCst) {
                        break;
                    }
                    epochs.exit(tid);
                    while lock.load(Ordering::SeqCst) {
                        sched::yield_point();
                    }
                }
                sched::yield_point();
                let a = data[0].load(Ordering::SeqCst);
                sched::yield_point();
                let b = data[1].load(Ordering::SeqCst);
                assert_eq!(a, b, "torn read: single-pass barrier under-waited");
                epochs.exit(tid);
                sched::yield_point();
            }
        });
    }
    {
        let epochs = Arc::clone(&epochs);
        let lock = Arc::clone(&lock);
        let data = Arc::clone(&data);
        s.spawn(move || {
            for round in 1..=2u64 {
                lock.store(true, Ordering::SeqCst);
                epochs.synchronize_blocked_readers(Some(WRITER));
                data[0].store(round, Ordering::SeqCst);
                sched::yield_point();
                data[1].store(round, Ordering::SeqCst);
                lock.store(false, Ordering::SeqCst);
                sched::yield_point();
            }
        });
    }
    s.run();
}

#[test]
fn blocked_readers_schedules() {
    sched::explore("epoch-blocked-readers", 0..400, blocked_readers_schedule);
}

/// A reader whose recorded version is the writer's own (or newer) must
/// NOT be waited for: the reader stays inside until the writer's barrier
/// completes, so over-waiting is a deadlock (caught by the step budget).
fn fair_skips_newer_schedule(seed: u64) {
    let epochs = Arc::new(EpochSet::new(2));
    let inside = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));

    let mut s = sched::Scheduler::new(seed);
    {
        let epochs = Arc::clone(&epochs);
        let inside = Arc::clone(&inside);
        let done = Arc::clone(&done);
        s.spawn(move || {
            epochs.enter(0);
            epochs.record_version(0, 7);
            inside.store(true, Ordering::SeqCst);
            while !done.load(Ordering::SeqCst) {
                sched::yield_point();
            }
            epochs.exit(0);
        });
    }
    {
        let epochs = Arc::clone(&epochs);
        let inside = Arc::clone(&inside);
        let done = Arc::clone(&done);
        s.spawn(move || {
            while !inside.load(Ordering::SeqCst) {
                sched::yield_point();
            }
            epochs.synchronize_fair(Some(1), 7);
            done.store(true, Ordering::SeqCst);
        });
    }
    s.run();
    assert!(done.load(Ordering::SeqCst));
}

#[test]
fn fair_skips_newer_readers_schedules() {
    sched::explore("epoch-fair-skips-newer", 0..300, fair_skips_newer_schedule);
}

/// A reader inside with an *older* recorded version must always be
/// waited for: the barrier may not complete before that reader exits.
fn fair_waits_for_older_schedule(seed: u64) {
    let epochs = Arc::new(EpochSet::new(2));
    let entered = Arc::new(AtomicBool::new(false));
    let log: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));

    let mut s = sched::Scheduler::new(seed);
    {
        let epochs = Arc::clone(&epochs);
        let entered = Arc::clone(&entered);
        let log = Arc::clone(&log);
        s.spawn(move || {
            epochs.enter(0);
            epochs.record_version(0, 3);
            entered.store(true, Ordering::SeqCst);
            sched::yield_point();
            sched::yield_point();
            log.lock().unwrap().push("reader-exiting");
            epochs.exit(0);
        });
    }
    {
        let epochs = Arc::clone(&epochs);
        let entered = Arc::clone(&entered);
        let log = Arc::clone(&log);
        s.spawn(move || {
            while !entered.load(Ordering::SeqCst) {
                sched::yield_point();
            }
            epochs.synchronize_fair(Some(1), 7);
            log.lock().unwrap().push("writer-synced");
        });
    }
    s.run();
    let log = log.lock().unwrap();
    assert_eq!(
        *log,
        vec!["reader-exiting", "writer-synced"],
        "barrier returned before the older reader exited"
    );
}

#[test]
fn fair_waits_for_older_readers_schedules() {
    sched::explore(
        "epoch-fair-waits-older",
        0..300,
        fair_waits_for_older_schedule,
    );
}

/// Regression for a deadlock found by `rwle` schedule exploration
/// (suite `rwle-fair-ns`, seed 0): a reader flips its clock, and only
/// then records the version it observed. A barrier that snapshots in
/// that window sees an odd clock with a stale (older) version and
/// starts waiting; if the reader then records the writer's own version
/// and waits for the writer in place, only the barrier's in-loop
/// version re-check prevents a deadlock.
fn fair_release_by_record_schedule(seed: u64) {
    let epochs = Arc::new(EpochSet::new(2));
    let released = Arc::new(AtomicBool::new(false));

    let mut s = sched::Scheduler::new(seed);
    {
        let epochs = Arc::clone(&epochs);
        let released = Arc::clone(&released);
        s.spawn(move || {
            epochs.enter(0);
            sched::yield_point();
            // The reader observed the writer's lock word: record its
            // version and wait for the writer, like a fair RW-LE reader.
            epochs.record_version(0, 9);
            while !released.load(Ordering::SeqCst) {
                sched::yield_point();
            }
            epochs.exit(0);
        });
    }
    {
        let epochs = Arc::clone(&epochs);
        let released = Arc::clone(&released);
        s.spawn(move || {
            epochs.synchronize_fair(Some(1), 9);
            released.store(true, Ordering::SeqCst);
        });
    }
    s.run();
}

#[test]
fn fair_release_by_record_schedules() {
    sched::explore(
        "epoch-fair-release-by-record",
        0..300,
        fair_release_by_record_schedule,
    );
}

proptest! {
    /// The fair wait-set rule, over arbitrary clock/version states:
    /// `synchronize_fair` waits on a reader iff its clock is odd AND its
    /// recorded version is older than the writer's — never on readers
    /// with version >= the writer's, always on older odd-clock readers.
    #[test]
    fn fair_wait_set_is_exactly_older_active_readers(
        threads in proptest::collection::vec((0u64..6, 0u64..6), 1..8),
        writer_version in 0u64..6,
    ) {
        let e = EpochSet::new(threads.len());
        for (tid, &(clock, ver)) in threads.iter().enumerate() {
            for _ in 0..clock / 2 {
                e.enter(tid);
                e.exit(tid);
            }
            if clock % 2 == 1 {
                e.enter(tid);
            }
            e.record_version(tid, ver);
        }
        let ws = e.fair_wait_set(None, writer_version);
        for (tid, &(clock, ver)) in threads.iter().enumerate() {
            let entry = ws.iter().find(|&&(t, _)| t == tid);
            let must_wait = clock % 2 == 1 && ver < writer_version;
            prop_assert_eq!(
                entry.is_some(),
                must_wait,
                "tid {} clock {} version {} writer_version {}",
                tid, clock, ver, writer_version
            );
            if let Some(&(_, snap)) = entry {
                prop_assert_eq!(snap, clock, "snapshot must be the entry clock");
            }
        }
    }

    /// `skip` removes exactly the writer's own slot from the wait set.
    #[test]
    fn fair_wait_set_skip_removes_own_slot(
        n in 1usize..6,
        writer_version in 1u64..6,
    ) {
        let e = EpochSet::new(n);
        for tid in 0..n {
            e.enter(tid); // all inside, version 0 < writer_version
        }
        for skip in 0..n {
            let ws = e.fair_wait_set(Some(skip), writer_version);
            prop_assert_eq!(ws.len(), n - 1);
            prop_assert!(ws.iter().all(|&(t, _)| t != skip));
        }
    }
}
