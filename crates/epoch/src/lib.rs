//! RCU-like per-thread epoch clocks and quiescence barriers.
//!
//! RW-LE readers do not execute inside hardware transactions; instead each
//! reader maintains a per-thread logical clock that is incremented when
//! entering and leaving a read-side critical section — odd means "inside".
//! A writer about to commit runs a *quiescence barrier*: it snapshots all
//! clocks and waits for every odd clock to change, guaranteeing that every
//! reader that might have observed pre-commit state has left its critical
//! section (paper §3.1, `RWLE_SYNCHRONIZE`).
//!
//! The crate provides:
//!
//! * [`EpochSet`] — the clock array with [`EpochSet::synchronize`] (the
//!   general two-pass barrier) and
//!   [`EpochSet::synchronize_blocked_readers`] (the §3.3 single-pass
//!   optimization, valid when new readers are blocked by a lock).
//! * Per-thread *lock-version snapshots* used by the fair variant of RW-LE
//!   (§3.3): [`EpochSet::record_version`] / [`EpochSet::synchronize_fair`],
//!   which only waits for readers that entered before a given writer
//!   version.
//! * A pluggable *reader indicator* on the registration path
//!   ([`EpochSet::with_indicator`]): a BRAVO-style or cloned
//!   [`rind::ReaderIndicator`] lets a reader publish itself with a single
//!   private store instead of the summary tree's shared RMWs; the barriers
//!   then union the indicator's slot scan with the summary scan.
//!
//! # Examples
//!
//! ```
//! use epoch::EpochSet;
//!
//! let epochs = EpochSet::new(4);
//! epochs.enter(2);
//! assert!(epochs.is_active(2));
//! epochs.exit(2);
//! epochs.synchronize(None); // no active readers: returns immediately
//! ```

#![warn(missing_docs)]

mod reclaim;
mod scalable;

pub use reclaim::Reclaimer;
pub use scalable::BarrierOutcome;

use scalable::{AdaptiveWaiter, GraceSeq, Parking, Summary};

use rind::{Indicator, IndicatorKind, Publish, ReaderIndicator, Revocation};
use std::sync::atomic::{AtomicU64, Ordering};

/// A cache-line-padded atomic counter.
///
/// Each reader clock gets its own line so reader entry/exit (the paper's
/// "almost free" fast path) never false-shares with other threads.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Per-thread epoch clocks plus fair-variant version snapshots.
pub struct EpochSet {
    clocks: Box<[PaddedU64]>,
    /// Fair variant: version of the global lock observed at reader entry.
    versions: Box<[PaddedU64]>,
    /// Active-reader summary tree: barriers scan this instead of every
    /// clock line, so a barrier costs O(active readers) not O(threads).
    summary: Summary,
    /// Grace-period start/done sequence for quiescence sharing between
    /// concurrently committing writers.
    grace: GraceSeq,
    /// Condvar rendezvous for parked barrier waiters.
    parking: Parking,
    /// Optional distributed reader indicator on the registration path
    /// (`None` for [`IndicatorKind::Central`], the seed behaviour): a
    /// reader that publishes a slot skips the summary tree entirely, and
    /// barriers discover it by scanning the indicator instead.
    ind: Option<Indicator>,
    /// Per-thread indicator token: `slot + 1` while the thread's current
    /// read-side section is slot-published, `0` when it registered through
    /// the summary tree. Owner-only (same single-writer discipline as the
    /// clock), hence Relaxed.
    ind_tokens: Box<[PaddedU64]>,
    /// Debug builds only: token of the OS thread currently updating the
    /// slot's clock (0 = none), used to detect two OS threads racing the
    /// non-atomic load-then-store clock update.
    #[cfg(debug_assertions)]
    owners: Box<[PaddedU64]>,
}

/// A barrier's indicator collection, scoped so `end_collect` runs on
/// every exit path (including the mid-wait quiescence-sharing returns).
///
/// `begin` forces `must_scan` whenever an indicator is installed, even if
/// [`rind::ReaderIndicator::begin_collect`] said the scan was skippable:
/// that proof relies on lock-style collectors waiting for slot *vacation*
/// before `end_collect`, whereas epoch barriers wait for clock movement —
/// a published reader that had not yet flipped its clock at one barrier's
/// scan (ignored there as a post-scan entry) can still be inside, slot
/// occupied and summary-invisible, when the next collection begins.
struct IndCollect<'a> {
    ind: Option<&'a dyn ReaderIndicator>,
    rev: Revocation,
}

impl<'a> IndCollect<'a> {
    fn begin(ind: Option<&'a dyn ReaderIndicator>) -> Self {
        let rev = match ind {
            Some(i) => Revocation {
                must_scan: true,
                ..i.begin_collect()
            },
            None => Revocation {
                revoked: false,
                must_scan: false,
            },
        };
        IndCollect { ind, rev }
    }

    /// Visits the thread id of every currently published reader.
    fn scan(&self, mut f: impl FnMut(usize)) {
        if let Some(i) = self.ind {
            i.collect(&self.rev, &mut |_slot, tid| f(tid));
        }
    }
}

impl Drop for IndCollect<'_> {
    fn drop(&mut self) {
        if let Some(i) = self.ind {
            i.end_collect();
        }
    }
}

/// A unique, never-zero token per OS thread (debug builds only).
#[cfg(debug_assertions)]
fn thread_token() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TOKEN: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    TOKEN.with(|t| *t)
}

impl EpochSet {
    /// Creates a set of `n` clocks, all initially even (outside).
    pub fn new(n: usize) -> Self {
        Self::with_indicator(n, IndicatorKind::Central)
    }

    /// Creates a set of `n` clocks whose registration path runs through a
    /// reader indicator of the given kind.
    ///
    /// [`IndicatorKind::Central`] is exactly [`EpochSet::new`]: readers
    /// mark the summary tree. For the distributed kinds, a reader first
    /// tries to publish an indicator slot (one private store for BRAVO in
    /// steady state); only on decline does it fall back to the summary
    /// RMWs. Barriers union the indicator scan with the summary scan, so
    /// either registration route is discovered.
    pub fn with_indicator(n: usize, kind: IndicatorKind) -> Self {
        let mk = |_| PaddedU64(AtomicU64::new(0));
        EpochSet {
            clocks: (0..n).map(mk).collect(),
            versions: (0..n).map(mk).collect(),
            summary: Summary::new(n),
            grace: GraceSeq::new(),
            parking: Parking::new(),
            ind: match kind {
                IndicatorKind::Central => None,
                _ => Some(Indicator::new(kind, n)),
            },
            ind_tokens: (0..n).map(mk).collect(),
            #[cfg(debug_assertions)]
            owners: (0..n).map(mk).collect(),
        }
    }

    /// The reader indicator on the registration path, if one is installed
    /// (tests and benches inspect bias state through this).
    pub fn indicator(&self) -> Option<&dyn ReaderIndicator> {
        self.ind.as_ref().map(|i| i as &dyn ReaderIndicator)
    }

    /// Number of tracked threads.
    #[inline]
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` if no threads are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Marks thread `tid` as inside a read-side critical section.
    ///
    /// Uses sequentially-consistent ordering: the paper's `MEM_FENCE`
    /// after the increment, making the odd clock visible to writers before
    /// any data read.
    ///
    /// The load-then-store clock update is deliberately *not* atomic: each
    /// slot's clock has a single writer at a time — the thread currently
    /// driving the slot — so no increment can be lost. A slot may be handed
    /// off to another OS thread *between* operations (with external
    /// synchronization), but two updates of the same slot must never
    /// overlap; debug builds assert this with a per-slot update token.
    ///
    /// Litmus: the SeqCst clock store + lock load are `wmm::proto`'s
    /// `epoch_enter_dekker` suite — forbidden outcome unreachable at
    /// these strengths, every one-notch weakening killed with a seed.
    #[inline]
    pub fn enter(&self, tid: usize) {
        sched::step();
        if let Some(ind) = &self.ind {
            match ind.publish(tid) {
                // The slot store plays the summary bit's role and obeys
                // the same ordering rule: it is SeqCst and precedes the
                // SeqCst clock store, so a barrier scan that misses the
                // slot is ordered before the publication — the reader
                // entered after the scan and is conflict detection's
                // responsibility, exactly like a post-scan summary entry.
                // (`Published`, the uncertified cloned outcome, needs no
                // extra writer check here because epoch barriers always
                // scan; see `IndCollect::begin`.)
                Publish::Certified(slot) | Publish::Published(slot) => {
                    self.ind_tokens[tid]
                        .0
                        .store(slot as u64 + 1, Ordering::Relaxed);
                    self.update_clock(tid, 0, "nested enter", Ordering::SeqCst);
                    return;
                }
                // Bias down or slot collision: centralized registration,
                // counted so the rebias policy can re-arm the fast path.
                Publish::Declined => ind.note_slow_read(),
            }
        }
        // The summary bits go up first: both are SeqCst, so they precede
        // the clock store in the SeqCst total order and any barrier scan
        // that could observe the odd clock observes the bits (the
        // enter-vs-scan dichotomy; see docs/PROTOCOL.md §5).
        self.summary.mark_enter(tid);
        // SeqCst (load-bearing, the paper's MEM_FENCE): the odd clock must
        // be totally ordered against the reader's subsequent lock-word
        // check — store clock, then load lock, racing a writer's lock CAS
        // then clock scan. This is the one clock store that must not be
        // weakened; see docs/PROTOCOL.md §5.
        self.update_clock(tid, 0, "nested enter", Ordering::SeqCst);
    }

    /// Marks thread `tid` as outside its read-side critical section.
    ///
    /// Release store: a writer that observes the even clock (Acquire)
    /// synchronizes with every load this critical section performed —
    /// exit needs no total-order fence, unlike [`EpochSet::enter`].
    /// Litmus: the `epoch_exit_grace` suite in `wmm::proto` pins this
    /// release/acquire pair as a message-passing test.
    #[inline]
    pub fn exit(&self, tid: usize) {
        sched::step();
        self.update_clock(tid, 1, "exit without enter", Ordering::Release);
        // Retract the registration only after the clock is even, so it
        // covers the clock's entire odd window (slot or summary bit,
        // whichever route `enter` took), then wake any barrier parked on
        // this reader (one load when nobody is parked).
        if let Some(ind) = &self.ind {
            let tok = self.ind_tokens[tid].0.load(Ordering::Relaxed);
            if tok != 0 {
                self.ind_tokens[tid].0.store(0, Ordering::Relaxed);
                ind.retire(tid, (tok - 1) as u32);
                self.parking.wake_all();
                return;
            }
        }
        self.summary.mark_exit(tid);
        self.parking.wake_all();
    }

    /// The shared non-atomic clock increment (see [`EpochSet::enter`] for
    /// the single-writer discipline that makes it sound).
    #[inline]
    fn update_clock(&self, tid: usize, expect_parity: u64, parity_msg: &str, order: Ordering) {
        #[cfg(debug_assertions)]
        {
            let prev = self.owners[tid].0.swap(thread_token(), Ordering::AcqRel);
            debug_assert_eq!(
                prev, 0,
                "slot {tid}: overlapping clock updates from two OS threads"
            );
        }
        let c = &self.clocks[tid].0;
        let v = c.load(Ordering::Relaxed);
        debug_assert_eq!(v % 2, expect_parity, "{}", parity_msg);
        c.store(v + 1, order);
        #[cfg(debug_assertions)]
        self.owners[tid].0.store(0, Ordering::Release);
    }

    /// Returns `true` if thread `tid` is inside a critical section.
    #[inline]
    pub fn is_active(&self, tid: usize) -> bool {
        self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1
    }

    /// Reads thread `tid`'s clock.
    #[inline]
    pub fn read_clock(&self, tid: usize) -> u64 {
        self.clocks[tid].0.load(Ordering::Acquire)
    }

    /// The grace-period sequence value at this instant — the snapshot a
    /// committing writer takes once all of its speculative claims are
    /// published (SeqCst, so it orders after those claims). Feed it to
    /// the `*_from` barrier variants: if another writer's barrier starts
    /// and completes after this snapshot, the barrier is skipped.
    #[inline]
    pub fn grace_snapshot(&self) -> u64 {
        self.grace.snapshot()
    }

    /// Completed full grace periods so far (monotone; tests and stats).
    pub fn graces_completed(&self) -> u64 {
        self.grace.completed()
    }

    /// Whether the summary tree currently marks `tid` active. Always set
    /// while `tid`'s clock is odd — unless an installed indicator admitted
    /// the reader, which is then visible through the indicator's slot scan
    /// instead. May be transiently set just before entry or just after
    /// exit (the conservative direction).
    pub fn summary_active(&self, tid: usize) -> bool {
        self.summary.leaf_word(tid / 64) & (1 << (tid % 64)) != 0
    }

    /// Raw summary words, exposed for schedule tests and microbenches.
    #[doc(hidden)]
    pub fn summary_words(&self) -> (u64, Vec<u64>) {
        let root = self.summary.root_word();
        let leaves = (0..self.clocks.len().div_ceil(64))
            .map(|g| self.summary.leaf_word(g))
            .collect();
        (root, leaves)
    }

    /// The general quiescence barrier (`RWLE_SYNCHRONIZE`, Algorithm 1).
    ///
    /// Waits until every thread that was inside a critical section at the
    /// scan (odd clock) has moved past that epoch. `skip` names the
    /// caller's own slot, which must not be waited on.
    ///
    /// New readers entering *after* the scan are not waited for — they
    /// are handled by conflict detection (they abort the suspended writer
    /// if they touch its write set).
    ///
    /// Allocates a fresh snapshot; hot paths should pass a reusable buffer
    /// to [`EpochSet::synchronize_in`] instead.
    pub fn synchronize(&self, skip: Option<usize>) -> BarrierOutcome {
        self.synchronize_in(skip, &mut Vec::new())
    }

    /// [`EpochSet::synchronize`] with a caller-owned scratch buffer:
    /// the snapshot reuses `snap`'s capacity, so a buffer threaded through
    /// repeated barriers makes quiescence allocation-free after warm-up.
    /// Takes the grace snapshot at barrier entry; callers that buffered
    /// their stores earlier should take it themselves and use
    /// [`EpochSet::synchronize_from`] for a wider sharing window.
    pub fn synchronize_in(&self, skip: Option<usize>, snap: &mut Vec<u64>) -> BarrierOutcome {
        self.synchronize_from(skip, self.grace.snapshot(), snap)
    }

    /// Batch-amortized quiescence: one barrier retiring an arbitrary
    /// number of publications the caller made since its last barrier.
    ///
    /// The semantic difference from calling [`EpochSet::synchronize_in`]
    /// once per publication is *where the grace snapshot is taken*: here
    /// it is taken after the caller's **final** flip, so the one barrier
    /// covers every copy retired by the whole batch — a reader still
    /// traversing any pre-flip copy has an odd clock at this scan and is
    /// waited for. (A snapshot taken before the last flip could be
    /// "covered" by a grace period concurrent with the later flips and
    /// release a copy a reader still holds.) This is the service layer's
    /// amortization entry point: the event loop performs one store pass
    /// over a batch of decoded mutations — at most one flip per shard —
    /// then pays this single barrier before any reply is flushed.
    /// Grace-period sharing still applies on top: a batch whose snapshot
    /// is already covered by another worker's completed grace period
    /// returns `shared` without scanning at all.
    pub fn batch_barrier(&self, skip: Option<usize>, snap: &mut Vec<u64>) -> BarrierOutcome {
        self.synchronize_from(skip, self.grace.snapshot(), snap)
    }

    /// The scalable quiescence barrier.
    ///
    /// Three mechanisms replace the old full clock walk:
    ///
    /// 1. **Quiescence sharing**: if a full grace period started and
    ///    completed after `grace_snap` (taken at the caller's commit
    ///    point, after its claims were published), every reader the
    ///    caller must drain has already been drained — return `shared`
    ///    without scanning. The same check runs inside the wait loop, so
    ///    a barrier already parked on a reader bails as soon as another
    ///    writer's grace period covers it.
    /// 2. **Summary scan**: only threads whose active-reader summary bit
    ///    is set are visited; the snapshot holds `(tid, clock)` pairs for
    ///    the odd ones, O(active readers) instead of O(threads).
    /// 3. **Adaptive waiting**: each stalled iteration spins briefly,
    ///    then yields, then parks on the exit-notified condvar; the stall
    ///    count is returned for `ThreadStats::barrier_stalls`.
    ///
    /// Clock loads are Acquire: observing a clock move past the snapshot
    /// synchronizes with that reader's critical-section loads (its exit
    /// is a Release store). The summary loads are SeqCst — the scan side
    /// of the enter-vs-scan dichotomy (docs/PROTOCOL.md §5). Both halves
    /// are machine-checked: `wmm::proto`'s `epoch_exit_grace` models the
    /// acquire against `exit`'s release, `summary_enter_vs_scan` the
    /// SeqCst scan.
    pub fn synchronize_from(
        &self,
        skip: Option<usize>,
        grace_snap: u64,
        snap: &mut Vec<u64>,
    ) -> BarrierOutcome {
        if self.grace.covered(grace_snap) {
            return BarrierOutcome {
                stalls: 0,
                shared: true,
            };
        }
        let ticket = self.grace.begin();
        let collect = IndCollect::begin(self.ind.as_ref().map(|i| i as &dyn ReaderIndicator));
        snap.clear();
        let mut skip_active = false;
        self.summary.scan(|tid| {
            let c = self.clocks[tid].0.load(Ordering::Acquire);
            if c % 2 != 1 {
                return;
            }
            if Some(tid) == skip {
                // The caller's own read-side section (nesting): this
                // barrier does not drain it, so it must not be published
                // as a full grace period for other writers to share.
                skip_active = true;
                return;
            }
            snap.push(tid as u64);
            snap.push(c);
        });
        // Indicator-admitted readers never touched the summary: union the
        // slot scan in under the same rules (odd clock, own slot exempt).
        // A tid already snapshotted exited and re-entered through the
        // other route between the two scans — its first epoch is the one
        // this barrier owes a wait, so keep the earlier pair.
        collect.scan(|tid| {
            let c = self.clocks[tid].0.load(Ordering::Acquire);
            if c % 2 != 1 || snap.chunks(2).any(|p| p[0] == tid as u64) {
                return;
            }
            if Some(tid) == skip {
                skip_active = true;
                return;
            }
            snap.push(tid as u64);
            snap.push(c);
        });
        let mut waiter = AdaptiveWaiter::new(&self.parking);
        let mut i = 0;
        while i < snap.len() {
            // Re-checked per entry, not only while blocked: once another
            // writer's grace period covers us, the rest of the walk is
            // redundant too (common when several writers were parked on
            // the same reader — the first to finish publishes, the rest
            // bail here).
            if self.grace.covered(grace_snap) {
                return BarrierOutcome {
                    stalls: waiter.stalls,
                    shared: true,
                };
            }
            let (tid, snapped) = (snap[i] as usize, snap[i + 1]);
            if self.clocks[tid].0.load(Ordering::Acquire) != snapped {
                i += 2;
                continue;
            }
            waiter.stall(|| self.clocks[tid].0.load(Ordering::Acquire) == snapped);
        }
        if !skip_active {
            self.grace.publish(ticket);
        }
        BarrierOutcome {
            stalls: waiter.stalls,
            shared: false,
        }
    }

    /// Single-pass quiescence (§3.3 optimization).
    ///
    /// Valid only when new readers are blocked (the caller holds the
    /// global lock in a state readers wait on): each clock only needs to
    /// be observed even once, with no snapshot pass (and no allocation).
    pub fn synchronize_blocked_readers(&self, skip: Option<usize>) -> BarrierOutcome {
        self.synchronize_blocked_readers_from(skip, self.grace.snapshot())
    }

    /// [`EpochSet::synchronize_blocked_readers`] with a caller-taken
    /// grace snapshot (see [`EpochSet::synchronize_from`]; for the NS
    /// path the commit point is the lock acquisition, so take the
    /// snapshot right after it). Waiting for every summarized clock to
    /// turn even is a *full* grace period — stronger than the snapshot
    /// barrier — so a completed single-pass barrier is published for
    /// sharing too.
    pub fn synchronize_blocked_readers_from(
        &self,
        skip: Option<usize>,
        grace_snap: u64,
    ) -> BarrierOutcome {
        if self.grace.covered(grace_snap) {
            return BarrierOutcome {
                stalls: 0,
                shared: true,
            };
        }
        let ticket = self.grace.begin();
        let collect = IndCollect::begin(self.ind.as_ref().map(|i| i as &dyn ReaderIndicator));
        let mut waiter = AdaptiveWaiter::new(&self.parking);
        let mut skip_active = false;
        // Manual summary walk (the closure-based scan cannot host the
        // wait loop): new readers are blocked, so a summary word loaded
        // once stays conservative for this barrier's purposes.
        let (root, leaves) = self.summary_words();
        let mut root = root;
        while root != 0 {
            let g = root.trailing_zeros() as usize;
            root &= root - 1;
            let mut word = leaves[g];
            while word != 0 {
                let i = word.trailing_zeros() as usize;
                word &= word - 1;
                let tid = g * 64 + i;
                if Some(tid) == skip {
                    skip_active = self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1;
                    continue;
                }
                while self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1 {
                    if self.grace.covered(grace_snap) {
                        return BarrierOutcome {
                            stalls: waiter.stalls,
                            shared: true,
                        };
                    }
                    waiter.stall(|| self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1);
                }
            }
        }
        // Indicator-admitted readers (invisible to the summary), same
        // single-pass rule: new readers are blocked, so each published
        // slot's clock only needs to be observed even once.
        let mut covered = false;
        collect.scan(|tid| {
            if covered {
                return;
            }
            if Some(tid) == skip {
                skip_active = skip_active || self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1;
                return;
            }
            while self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1 {
                if self.grace.covered(grace_snap) {
                    covered = true;
                    return;
                }
                waiter.stall(|| self.clocks[tid].0.load(Ordering::Acquire) % 2 == 1);
            }
        });
        if covered {
            return BarrierOutcome {
                stalls: waiter.stalls,
                shared: true,
            };
        }
        if !skip_active {
            self.grace.publish(ticket);
        }
        BarrierOutcome {
            stalls: waiter.stalls,
            shared: false,
        }
    }

    /// Records the lock version a reader observed at entry (fair variant).
    ///
    /// Release: pairs with the barrier's Acquire version check; the fair
    /// barrier re-checks versions while waiting, so a briefly stale value
    /// only delays the skip decision, never breaks it.
    #[inline]
    pub fn record_version(&self, tid: usize, version: u64) {
        self.versions[tid].0.store(version, Ordering::Release);
    }

    /// Fair quiescence: waits only for active readers whose recorded
    /// version is older than `writer_version` (§3.3).
    ///
    /// Readers that observed the writer's own (or a newer) version are
    /// serialized after it by construction and need not be waited for.
    ///
    /// The recorded version is re-checked *while* waiting, not only in
    /// the initial pass: a reader flips its clock before recording the
    /// version it observed, so the barrier can catch a reader between
    /// the two steps with a stale (older) version. If that reader then
    /// observes the writer's lock and records its version, it will wait
    /// for the lock in place — waiting for its clock here would deadlock
    /// (writer awaits reader's exit, reader awaits writer's release).
    pub fn synchronize_fair(&self, skip: Option<usize>, writer_version: u64) -> BarrierOutcome {
        self.synchronize_fair_in(skip, writer_version, &mut Vec::new())
    }

    /// [`EpochSet::synchronize_fair`] with a caller-owned scratch buffer
    /// (same contract as [`EpochSet::synchronize_in`]): the snapshot
    /// reuses `snap`'s capacity, keeping the fair barrier allocation-free
    /// across repeated commits. The wait rule is the one specified (and
    /// tested) by [`EpochSet::fair_wait_set`].
    pub fn synchronize_fair_in(
        &self,
        skip: Option<usize>,
        writer_version: u64,
        snap: &mut Vec<u64>,
    ) -> BarrierOutcome {
        self.synchronize_fair_from(skip, writer_version, self.grace.snapshot(), snap)
    }

    /// The fair barrier with a caller-taken grace snapshot.
    ///
    /// Grace sharing *consumes* here but never *publishes*: a completed
    /// full grace period drains a superset of the fair wait set (everyone
    /// active at the scan, regardless of recorded version), so `covered`
    /// satisfies this barrier too — but a completed fair barrier waited
    /// only for a subset and must not advance the shared sequence.
    pub fn synchronize_fair_from(
        &self,
        skip: Option<usize>,
        writer_version: u64,
        grace_snap: u64,
        snap: &mut Vec<u64>,
    ) -> BarrierOutcome {
        if self.grace.covered(grace_snap) {
            return BarrierOutcome {
                stalls: 0,
                shared: true,
            };
        }
        let collect = IndCollect::begin(self.ind.as_ref().map(|i| i as &dyn ReaderIndicator));
        self.fair_wait_set_in(skip, writer_version, snap);
        // Indicator-admitted readers join the wait set under the same
        // fair rule ([`EpochSet::fair_wait_set`] documents the
        // summary-path rule; the barrier applies it to slot-published
        // readers here): odd clock AND recorded version older than the
        // writer's.
        collect.scan(|tid| {
            if Some(tid) == skip || snap.chunks(2).any(|p| p[0] == tid as u64) {
                return;
            }
            let c = self.clocks[tid].0.load(Ordering::Acquire);
            if c % 2 == 1 && self.versions[tid].0.load(Ordering::Acquire) < writer_version {
                snap.push(tid as u64);
                snap.push(c);
            }
        });
        let mut waiter = AdaptiveWaiter::new(&self.parking);
        let mut i = 0;
        while i < snap.len() {
            // Per-entry sharing check (see `synchronize_from`): a full
            // grace period drains a superset of this wait set.
            if self.grace.covered(grace_snap) {
                return BarrierOutcome {
                    stalls: waiter.stalls,
                    shared: true,
                };
            }
            let (tid, snapped) = (snap[i] as usize, snap[i + 1]);
            // The recorded version is re-checked *while* waiting, not only
            // in the initial pass: a reader flips its clock before
            // recording the version it observed, so the scan can catch a
            // reader between the two steps with a stale (older) version.
            // If that reader then observes the writer's lock and records
            // its version, it waits for the lock in place — waiting for
            // its clock here would deadlock.
            if self.clocks[tid].0.load(Ordering::Acquire) != snapped
                || self.versions[tid].0.load(Ordering::Acquire) >= writer_version
            {
                i += 2;
                continue;
            }
            waiter.stall(|| {
                self.clocks[tid].0.load(Ordering::Acquire) == snapped
                    && self.versions[tid].0.load(Ordering::Acquire) < writer_version
            });
        }
        BarrierOutcome {
            stalls: waiter.stalls,
            shared: false,
        }
    }

    /// The wait-set decision of [`EpochSet::synchronize_fair`], separated
    /// out so the rule is directly testable: the barrier waits on exactly
    /// the threads that are inside a critical section (odd snapshot clock)
    /// *and* recorded a version older than `writer_version`.
    ///
    /// Returns `(tid, snapshot_clock)` pairs; the barrier waits for each
    /// listed clock to move past its snapshot value. Allocates — hot
    /// paths use [`EpochSet::fair_wait_set_in`].
    pub fn fair_wait_set(&self, skip: Option<usize>, writer_version: u64) -> Vec<(usize, u64)> {
        let mut buf = Vec::new();
        self.fair_wait_set_in(skip, writer_version, &mut buf);
        buf.chunks(2).map(|p| (p[0] as usize, p[1])).collect()
    }

    /// Allocation-free [`EpochSet::fair_wait_set`]: fills `buf` with
    /// flattened `(tid, snapshot_clock)` pairs (`tid` at even indices),
    /// visiting only summary-marked threads in ascending tid order.
    pub fn fair_wait_set_in(&self, skip: Option<usize>, writer_version: u64, buf: &mut Vec<u64>) {
        buf.clear();
        self.summary.scan(|tid| {
            if Some(tid) == skip {
                return;
            }
            let c = self.clocks[tid].0.load(Ordering::Acquire);
            if c % 2 == 1 && self.versions[tid].0.load(Ordering::Acquire) < writer_version {
                buf.push(tid as u64);
                buf.push(c);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enter_exit_toggles_activity() {
        let e = EpochSet::new(2);
        assert!(!e.is_active(0));
        e.enter(0);
        assert!(e.is_active(0));
        assert!(!e.is_active(1));
        e.exit(0);
        assert!(!e.is_active(0));
        assert_eq!(e.read_clock(0), 2);
    }

    #[test]
    fn synchronize_with_no_readers_returns() {
        let e = EpochSet::new(8);
        e.synchronize(None);
        e.synchronize_blocked_readers(None);
        e.synchronize_fair(None, 1);
    }

    #[test]
    fn synchronize_skips_self() {
        let e = EpochSet::new(2);
        e.enter(0);
        // Would deadlock if slot 0 were waited on.
        e.synchronize(Some(0));
        e.synchronize_blocked_readers(Some(0));
        e.exit(0);
    }

    #[test]
    fn synchronize_waits_for_active_reader() {
        let e = Arc::new(EpochSet::new(2));
        e.enter(1);
        // The flag is set strictly before the reader exits, so if the
        // barrier really waits for the reader it must observe the flag —
        // a determinized version of the old elapsed-time assertion.
        let exiting = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let e2 = Arc::clone(&e);
        let x2 = Arc::clone(&exiting);
        let h = std::thread::spawn(move || {
            x2.store(true, Ordering::SeqCst);
            e2.exit(1);
        });
        e.synchronize(Some(0));
        assert!(
            exiting.load(Ordering::SeqCst),
            "barrier returned before the reader started draining"
        );
        h.join().unwrap();
    }

    #[test]
    fn synchronize_does_not_wait_for_new_readers() {
        // Deterministic half of the property: the barrier needs exactly
        // one clock movement per scanned reader, so it completes off a
        // single exit and a section beginning afterwards is invisible to
        // it. The racy half — a reader re-entering while the barrier is
        // mid-wait — cannot be staged with real threads without timing
        // (a pre-scan re-enter is a section the barrier must wait for);
        // it is explored seed-by-seed in tests/schedules.rs
        // (grace_period_schedules), where the step budget catches a
        // barrier that waits for evenness instead of a clock change.
        let e = Arc::new(EpochSet::new(2));
        e.enter(1);
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || e2.exit(1));
        e.synchronize(Some(0));
        h.join().unwrap();
        e.enter(1); // new section; the completed barrier never waited on it
        assert!(e.is_active(1), "new critical section still running");
    }

    #[test]
    fn fair_synchronize_ignores_newer_readers() {
        let e = EpochSet::new(2);
        e.enter(1);
        e.record_version(1, 5);
        // Writer at version 5: reader recorded version 5 (>= 5) → no wait.
        e.synchronize_fair(Some(0), 5);
        // Writer at version 6: reader version 5 < 6 → must wait.
        let waited = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let e = &e;
            let w = Arc::clone(&waited);
            s.spawn(move || {
                // Flag-before-exit: the barrier can only return after
                // exit(1), so observing the flag is guaranteed, not timed.
                w.store(true, Ordering::SeqCst);
                e.exit(1);
            });
            e.synchronize_fair(Some(0), 6);
            assert!(waited.load(Ordering::SeqCst), "waited for older reader");
        });
    }

    #[test]
    fn blocked_readers_barrier_waits_until_even() {
        let e = Arc::new(EpochSet::new(3));
        e.enter(2);
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            e2.exit(2);
        });
        e.synchronize_blocked_readers(Some(0));
        assert!(!e.is_active(2));
        h.join().unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nested enter")]
    fn nested_enter_panics_in_debug() {
        let e = EpochSet::new(1);
        e.enter(0);
        e.enter(0);
    }

    #[test]
    fn clock_handoff_between_operations_is_allowed() {
        // The single-writer discipline forbids *overlapping* updates, not
        // handing a slot to another OS thread between operations.
        let e = Arc::new(EpochSet::new(1));
        e.enter(0);
        let e2 = Arc::clone(&e);
        std::thread::spawn(move || e2.exit(0)).join().unwrap();
        assert_eq!(e.read_clock(0), 2);
    }

    #[test]
    fn indicator_reader_skips_summary_but_barrier_sees_it() {
        let e = EpochSet::with_indicator(4, IndicatorKind::Bravo);
        assert!(e.indicator().unwrap().bias_enabled());
        e.enter(0);
        assert!(e.is_active(0));
        assert!(
            !e.summary_active(0),
            "certified reader must not touch the summary tree"
        );
        // The slot scan must find the reader: with `skip` naming it, the
        // barrier marks its own slot active and therefore must NOT publish
        // a full grace period. A barrier blind to the slot would publish.
        let o = e.synchronize(Some(0));
        assert!(!o.shared);
        assert_eq!(
            e.graces_completed(),
            0,
            "barrier published a grace period despite an active slot reader"
        );
        e.synchronize_blocked_readers(Some(0));
        assert_eq!(e.graces_completed(), 0);
        e.exit(0);
        assert!(!e.is_active(0));
        e.synchronize(None);
        // Ticket high-water mark: the skipped barriers consumed tickets,
        // so only "a full grace period completed" is asserted, not "one".
        assert!(e.graces_completed() > 0);
    }

    #[test]
    fn indicator_barrier_waits_for_slot_reader() {
        let e = Arc::new(EpochSet::with_indicator(2, IndicatorKind::Cloned));
        e.enter(1);
        assert!(!e.summary_active(1), "cloned reader registers via its slot");
        let exiting = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let e2 = Arc::clone(&e);
        let x2 = Arc::clone(&exiting);
        let h = std::thread::spawn(move || {
            x2.store(true, Ordering::SeqCst);
            e2.exit(1);
        });
        e.synchronize(Some(0));
        assert!(
            exiting.load(Ordering::SeqCst),
            "barrier returned before the slot reader started draining"
        );
        h.join().unwrap();
    }

    #[test]
    fn indicator_declined_reader_falls_back_to_summary() {
        let e = EpochSet::with_indicator(2, IndicatorKind::Bravo);
        let ind = e.indicator().unwrap();
        // Revoke the bias: subsequent publishes decline.
        let rev = ind.begin_collect();
        assert!(rev.revoked);
        e.enter(0);
        assert!(
            e.summary_active(0),
            "declined reader must register through the summary tree"
        );
        e.exit(0);
        assert!(!e.summary_active(0));
        ind.end_collect();
    }

    #[test]
    fn indicator_fair_barrier_respects_versions() {
        let e = EpochSet::with_indicator(2, IndicatorKind::Cloned);
        e.enter(1);
        e.record_version(1, 5);
        // Slot reader with version >= the writer's: no wait, no deadlock.
        e.synchronize_fair(Some(0), 5);
        e.exit(1);
    }

    #[test]
    fn fair_wait_set_matches_rule() {
        let e = EpochSet::new(4);
        e.enter(0); // odd, version 0 -> waited on for wv > 0
        e.enter(1);
        e.record_version(1, 7); // odd, version 7 -> skipped for wv <= 7
        e.record_version(3, 1); // even clock -> never waited on
        let ws = e.fair_wait_set(None, 5);
        assert_eq!(ws, vec![(0, 1)]);
        let ws = e.fair_wait_set(None, 8);
        assert_eq!(ws, vec![(0, 1), (1, 1)]);
        let ws = e.fair_wait_set(Some(0), 8);
        assert_eq!(ws, vec![(1, 1)]);
    }
}
