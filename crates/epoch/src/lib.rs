//! RCU-like per-thread epoch clocks and quiescence barriers.
//!
//! RW-LE readers do not execute inside hardware transactions; instead each
//! reader maintains a per-thread logical clock that is incremented when
//! entering and leaving a read-side critical section — odd means "inside".
//! A writer about to commit runs a *quiescence barrier*: it snapshots all
//! clocks and waits for every odd clock to change, guaranteeing that every
//! reader that might have observed pre-commit state has left its critical
//! section (paper §3.1, `RWLE_SYNCHRONIZE`).
//!
//! The crate provides:
//!
//! * [`EpochSet`] — the clock array with [`EpochSet::synchronize`] (the
//!   general two-pass barrier) and
//!   [`EpochSet::synchronize_blocked_readers`] (the §3.3 single-pass
//!   optimization, valid when new readers are blocked by a lock).
//! * Per-thread *lock-version snapshots* used by the fair variant of RW-LE
//!   (§3.3): [`EpochSet::record_version`] / [`EpochSet::synchronize_fair`],
//!   which only waits for readers that entered before a given writer
//!   version.
//!
//! # Examples
//!
//! ```
//! use epoch::EpochSet;
//!
//! let epochs = EpochSet::new(4);
//! epochs.enter(2);
//! assert!(epochs.is_active(2));
//! epochs.exit(2);
//! epochs.synchronize(None); // no active readers: returns immediately
//! ```

#![warn(missing_docs)]

mod reclaim;

pub use reclaim::Reclaimer;

use std::sync::atomic::{AtomicU64, Ordering};

/// A cache-line-padded atomic counter.
///
/// Each reader clock gets its own line so reader entry/exit (the paper's
/// "almost free" fast path) never false-shares with other threads.
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// Per-thread epoch clocks plus fair-variant version snapshots.
pub struct EpochSet {
    clocks: Box<[PaddedU64]>,
    /// Fair variant: version of the global lock observed at reader entry.
    versions: Box<[PaddedU64]>,
}

impl EpochSet {
    /// Creates a set of `n` clocks, all initially even (outside).
    pub fn new(n: usize) -> Self {
        let mk = |_| PaddedU64(AtomicU64::new(0));
        EpochSet {
            clocks: (0..n).map(mk).collect(),
            versions: (0..n).map(mk).collect(),
        }
    }

    /// Number of tracked threads.
    #[inline]
    pub fn len(&self) -> usize {
        self.clocks.len()
    }

    /// Returns `true` if no threads are tracked.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.clocks.is_empty()
    }

    /// Marks thread `tid` as inside a read-side critical section.
    ///
    /// Uses sequentially-consistent ordering: the paper's `MEM_FENCE`
    /// after the increment, making the odd clock visible to writers before
    /// any data read.
    #[inline]
    pub fn enter(&self, tid: usize) {
        let c = &self.clocks[tid].0;
        let v = c.load(Ordering::Relaxed);
        debug_assert_eq!(v % 2, 0, "nested enter");
        c.store(v + 1, Ordering::SeqCst);
    }

    /// Marks thread `tid` as outside its read-side critical section.
    #[inline]
    pub fn exit(&self, tid: usize) {
        let c = &self.clocks[tid].0;
        let v = c.load(Ordering::Relaxed);
        debug_assert_eq!(v % 2, 1, "exit without enter");
        c.store(v + 1, Ordering::SeqCst);
    }

    /// Returns `true` if thread `tid` is inside a critical section.
    #[inline]
    pub fn is_active(&self, tid: usize) -> bool {
        self.clocks[tid].0.load(Ordering::SeqCst) % 2 == 1
    }

    /// Reads thread `tid`'s clock.
    #[inline]
    pub fn read_clock(&self, tid: usize) -> u64 {
        self.clocks[tid].0.load(Ordering::SeqCst)
    }

    /// The general quiescence barrier (`RWLE_SYNCHRONIZE`, Algorithm 1).
    ///
    /// Snapshots every clock, then waits until each thread that was inside
    /// a critical section (odd clock) has moved past that epoch. `skip`
    /// names the caller's own slot, which must not be waited on.
    ///
    /// New readers entering *after* the snapshot are not waited for — they
    /// are handled by conflict detection (they abort the suspended writer
    /// if they touch its write set).
    pub fn synchronize(&self, skip: Option<usize>) {
        let snapshot: Vec<u64> = self
            .clocks
            .iter()
            .map(|c| c.0.load(Ordering::SeqCst))
            .collect();
        for (tid, &snap) in snapshot.iter().enumerate() {
            if Some(tid) == skip || snap % 2 == 0 {
                continue;
            }
            while self.clocks[tid].0.load(Ordering::SeqCst) == snap {
                std::thread::yield_now();
            }
        }
    }

    /// Single-pass quiescence (§3.3 optimization).
    ///
    /// Valid only when new readers are blocked (the caller holds the
    /// global lock in a state readers wait on): each clock only needs to
    /// be observed even once, with no snapshot pass.
    pub fn synchronize_blocked_readers(&self, skip: Option<usize>) {
        for tid in 0..self.clocks.len() {
            if Some(tid) == skip {
                continue;
            }
            while self.clocks[tid].0.load(Ordering::SeqCst) % 2 == 1 {
                std::thread::yield_now();
            }
        }
    }

    /// Records the lock version a reader observed at entry (fair variant).
    #[inline]
    pub fn record_version(&self, tid: usize, version: u64) {
        self.versions[tid].0.store(version, Ordering::SeqCst);
    }

    /// Fair quiescence: waits only for active readers whose recorded
    /// version is older than `writer_version` (§3.3).
    ///
    /// Readers that observed the writer's own (or a newer) version are
    /// serialized after it by construction and need not be waited for.
    pub fn synchronize_fair(&self, skip: Option<usize>, writer_version: u64) {
        let snapshot: Vec<u64> = self
            .clocks
            .iter()
            .map(|c| c.0.load(Ordering::SeqCst))
            .collect();
        for (tid, &snap) in snapshot.iter().enumerate() {
            if Some(tid) == skip || snap % 2 == 0 {
                continue;
            }
            if self.versions[tid].0.load(Ordering::SeqCst) >= writer_version {
                continue;
            }
            while self.clocks[tid].0.load(Ordering::SeqCst) == snap {
                std::thread::yield_now();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn enter_exit_toggles_activity() {
        let e = EpochSet::new(2);
        assert!(!e.is_active(0));
        e.enter(0);
        assert!(e.is_active(0));
        assert!(!e.is_active(1));
        e.exit(0);
        assert!(!e.is_active(0));
        assert_eq!(e.read_clock(0), 2);
    }

    #[test]
    fn synchronize_with_no_readers_returns() {
        let e = EpochSet::new(8);
        e.synchronize(None);
        e.synchronize_blocked_readers(None);
        e.synchronize_fair(None, 1);
    }

    #[test]
    fn synchronize_skips_self() {
        let e = EpochSet::new(2);
        e.enter(0);
        // Would deadlock if slot 0 were waited on.
        e.synchronize(Some(0));
        e.synchronize_blocked_readers(Some(0));
        e.exit(0);
    }

    #[test]
    fn synchronize_waits_for_active_reader() {
        let e = Arc::new(EpochSet::new(2));
        e.enter(1);
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            e2.exit(1);
        });
        let t0 = std::time::Instant::now();
        e.synchronize(Some(0));
        assert!(
            t0.elapsed() >= std::time::Duration::from_millis(15),
            "must have waited for the reader to drain"
        );
        h.join().unwrap();
    }

    #[test]
    fn synchronize_does_not_wait_for_new_readers() {
        // A reader that exits and re-enters crosses the snapshot barrier:
        // the clock changed, which is all the barrier waits for.
        let e = Arc::new(EpochSet::new(2));
        e.enter(1);
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            e2.exit(1);
            e2.enter(1); // re-enter; barrier must not wait for this one
        });
        e.synchronize(Some(0));
        h.join().unwrap();
        assert!(e.is_active(1), "new critical section still running");
    }

    #[test]
    fn fair_synchronize_ignores_newer_readers() {
        let e = EpochSet::new(2);
        e.enter(1);
        e.record_version(1, 5);
        // Writer at version 5: reader recorded version 5 (>= 5) → no wait.
        e.synchronize_fair(Some(0), 5);
        // Writer at version 6: reader version 5 < 6 → must wait.
        let waited = Arc::new(std::sync::atomic::AtomicBool::new(false));
        std::thread::scope(|s| {
            let e = &e;
            let w = Arc::clone(&waited);
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(10));
                w.store(true, Ordering::SeqCst);
                e.exit(1);
            });
            e.synchronize_fair(Some(0), 6);
            assert!(waited.load(Ordering::SeqCst), "waited for older reader");
        });
    }

    #[test]
    fn blocked_readers_barrier_waits_until_even() {
        let e = Arc::new(EpochSet::new(3));
        e.enter(2);
        let e2 = Arc::clone(&e);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            e2.exit(2);
        });
        e.synchronize_blocked_readers(Some(0));
        assert!(!e.is_active(2));
        h.join().unwrap();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "nested enter")]
    fn nested_enter_panics_in_debug() {
        let e = EpochSet::new(1);
        e.enter(0);
        e.enter(0);
    }
}
