//! Scalable-quiescence building blocks: the active-reader summary tree,
//! the global grace-period sequence, and the adaptive barrier waiter.
//!
//! PR-2 made the per-access fast path cheap; the remaining commit-path
//! cost was the barrier itself, which walked one padded cache line per
//! *registered* thread regardless of how many were actually reading, and
//! re-ran in full for every committing writer. The three pieces here
//! attack both axes (BRAVO-style reader visibility for the scan, RCU
//! `gp_seq`-style sharing for the repeat barriers, bounded spin→yield→park
//! for the wait):
//!
//! * [`Summary`] — a two-level bitmap (one bit per thread in per-64-thread
//!   leaf words, one bit per leaf word in a root word) maintained by
//!   reader entry/exit, so a barrier visits only threads whose clocks can
//!   be odd instead of scanning every clock line.
//! * [`GraceSeq`] — start/done grace-period counters. A completed barrier
//!   whose scan *started* after a writer's commit point drains every
//!   reader that writer must wait for, so the writer skips its own walk.
//! * [`AdaptiveWaiter`] + [`Parking`] — barrier waits spin briefly, yield,
//!   and finally park on a condvar that reader exits notify, instead of
//!   yield-storming against the very reader being waited for.
//!
//! The memory-ordering soundness argument (the enter-vs-scan dichotomy)
//! lives with the per-site table in `docs/PROTOCOL.md` §5.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// A cache-line-padded atomic word (same shape as the clock lines).
#[repr(align(64))]
pub(crate) struct PaddedAtomic(pub(crate) AtomicU64);

/// Threads per summary leaf word.
const GROUP: usize = 64;

/// Hierarchical active-reader summary.
///
/// Leaf bit `tid % 64` of word `tid / 64` is set while thread `tid` is
/// inside a read-side critical section; root bit `w` is set once leaf
/// word `w` has ever held a reader. Root bits are *sticky*: clearing them
/// safely would need a clear-then-revalidate dance whose window a
/// concurrent scan could observe, and a stale root bit only costs one
/// extra (zero) leaf-word load per barrier.
pub(crate) struct Summary {
    leaves: Box<[PaddedAtomic]>,
    root: PaddedAtomic,
}

impl Summary {
    /// A summary for `n` threads (at most 64 × 64 = 4096).
    pub(crate) fn new(n: usize) -> Self {
        assert!(
            n <= GROUP * GROUP,
            "summary tree supports at most {} threads",
            GROUP * GROUP
        );
        Summary {
            leaves: (0..n.div_ceil(GROUP))
                .map(|_| PaddedAtomic(AtomicU64::new(0)))
                .collect(),
            root: PaddedAtomic(AtomicU64::new(0)),
        }
    }

    /// Publishes thread `tid` as active. Called *before* the clock store
    /// of the reader's `enter`, so both SeqCst stores precede the clock
    /// in the total order: any barrier scan that could have observed the
    /// odd clock observes the summary bits (the enter-vs-scan dichotomy,
    /// same discipline as the HTM engine's claim filter). Machine-checked
    /// by `wmm::proto`'s `summary_enter_vs_scan` litmus.
    #[inline]
    pub(crate) fn mark_enter(&self, tid: usize) {
        let bit = 1u64 << (tid % GROUP);
        let prev = self.leaves[tid / GROUP].0.fetch_or(bit, Ordering::SeqCst);
        debug_assert_eq!(prev & bit, 0, "summary bit already set: nested enter");
        let rbit = 1u64 << (tid / GROUP);
        // The root bit is sticky, so the conditional set races nothing:
        // once observed set it stays set, and the common case (the group
        // has been active before) skips the contended RMW entirely.
        if self.root.0.load(Ordering::SeqCst) & rbit == 0 {
            self.root.0.fetch_or(rbit, Ordering::SeqCst);
        }
    }

    /// Retracts thread `tid`. Called *after* the clock store of `exit`:
    /// the bit covers the clock's entire odd window, so a scan that finds
    /// the bit clear either ran before the enter (the reader entered
    /// after the writer's commit point — conflict detection covers it) or
    /// after this clear (the reader already drained).
    #[inline]
    pub(crate) fn mark_exit(&self, tid: usize) {
        let bit = 1u64 << (tid % GROUP);
        let prev = self.leaves[tid / GROUP]
            .0
            .fetch_and(!bit, Ordering::Release);
        debug_assert_ne!(prev & bit, 0, "summary bit clear on exit");
    }

    /// Visits every thread whose summary bit is set, in ascending order.
    ///
    /// The root and leaf loads are SeqCst so they order after the
    /// caller's commit-point RMW and see the bits of every reader whose
    /// enter precedes that point (see `docs/PROTOCOL.md` §5; litmus:
    /// `summary_enter_vs_scan` in `wmm::proto`).
    #[inline]
    pub(crate) fn scan(&self, mut visit: impl FnMut(usize)) {
        let mut root = self.root.0.load(Ordering::SeqCst);
        while root != 0 {
            let w = root.trailing_zeros() as usize;
            root &= root - 1;
            let mut word = self.leaves[w].0.load(Ordering::SeqCst);
            while word != 0 {
                let i = word.trailing_zeros() as usize;
                word &= word - 1;
                visit(w * GROUP + i);
            }
        }
    }

    /// Raw leaf word (tests and benches).
    pub(crate) fn leaf_word(&self, group: usize) -> u64 {
        self.leaves[group].0.load(Ordering::SeqCst)
    }

    /// Raw root word (tests and benches).
    pub(crate) fn root_word(&self) -> u64 {
        self.root.0.load(Ordering::SeqCst)
    }
}

/// Global grace-period sequence: `start` counts barriers that have begun
/// their scan, `done` the highest ticket whose barrier completed.
///
/// A writer snapshots `start` at its commit point (all of its claims are
/// published by then). If `done` later exceeds that snapshot, some full
/// barrier *started its scan* after the snapshot — so after the writer's
/// claims — and completed: every reader that entered before the writer's
/// commit point either had drained or was caught by that scan and has
/// drained since. Readers entering after the commit point are the
/// conflict-detection side of the dichotomy. The writer's own clock walk
/// is therefore redundant and is skipped (quiescence sharing).
pub(crate) struct GraceSeq {
    start: PaddedAtomic,
    done: PaddedAtomic,
}

impl GraceSeq {
    pub(crate) fn new() -> Self {
        GraceSeq {
            start: PaddedAtomic(AtomicU64::new(0)),
            done: PaddedAtomic(AtomicU64::new(0)),
        }
    }

    /// The snapshot a prospective skipper takes at its commit point.
    /// SeqCst: must order after the writer's claim publications.
    #[inline]
    pub(crate) fn snapshot(&self) -> u64 {
        self.start.0.load(Ordering::SeqCst)
    }

    /// Has a full grace period started *and* completed since `snap`?
    #[inline]
    pub(crate) fn covered(&self, snap: u64) -> bool {
        self.done.0.load(Ordering::SeqCst) > snap
    }

    /// Takes a ticket for a barrier about to scan. SeqCst RMW: orders
    /// the subsequent scan after any snapshot that returned a smaller
    /// value, which is exactly what `covered` relies on.
    #[inline]
    pub(crate) fn begin(&self) -> u64 {
        self.start.0.fetch_add(1, Ordering::SeqCst) + 1
    }

    /// Publishes a *completed* full barrier. Must not be called by
    /// barriers that waited for only a subset of readers (the fair
    /// variant) or that skipped an active reader (`skip` with an odd
    /// clock), and not by barriers that bailed out early via `covered`.
    #[inline]
    pub(crate) fn publish(&self, ticket: u64) {
        self.done.0.fetch_max(ticket, Ordering::SeqCst);
    }

    /// Completed-grace-period counter (tests and stats).
    pub(crate) fn completed(&self) -> u64 {
        self.done.0.load(Ordering::SeqCst)
    }
}

/// Rendezvous for parked barrier waiters: reader exits notify the
/// condvar when (and only when) the waiter count is non-zero, so the
/// reader fast path pays one load.
pub(crate) struct Parking {
    waiters: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

/// How long a parked barrier sleeps before re-checking on its own.
///
/// The park/notify handshake is deliberately best-effort (the reader's
/// clock store is Release, not SeqCst, so a notify can in principle be
/// missed); the timeout — not the notification — is what bounds the wait,
/// and a missed wakeup costs at most one timeout of extra latency.
const PARK_TIMEOUT: Duration = Duration::from_micros(100);

/// Spin iterations before a barrier wait starts yielding.
const WAIT_SPIN_LIMIT: u32 = 16;
/// Yield iterations before a barrier wait parks.
const WAIT_YIELD_LIMIT: u32 = 32;

impl Parking {
    pub(crate) fn new() -> Self {
        Parking {
            waiters: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Reader-exit hook: wake parked barriers, if any.
    #[inline]
    pub(crate) fn wake_all(&self) {
        if self.waiters.load(Ordering::SeqCst) == 0 {
            return;
        }
        // Taking (and dropping) the lock orders this wakeup after any
        // in-flight parker's registered-but-not-yet-waiting window.
        drop(self.lock.lock().expect("epoch parking poisoned"));
        self.cv.notify_all();
    }

    /// Parks until notified or timed out, unless `still_blocked` turns
    /// false after registration (the standard lost-wakeup re-check).
    fn park(&self, still_blocked: impl Fn() -> bool) {
        self.waiters.fetch_add(1, Ordering::SeqCst);
        {
            let guard = self.lock.lock().expect("epoch parking poisoned");
            if still_blocked() {
                let _ = self
                    .cv
                    .wait_timeout(guard, PARK_TIMEOUT)
                    .expect("epoch parking poisoned");
            }
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Per-barrier adaptive wait state: bounded spin, then yield, then park,
/// counting every stalled iteration for `ThreadStats::barrier_stalls`.
pub(crate) struct AdaptiveWaiter<'a> {
    parking: &'a Parking,
    iters: u32,
    /// Stalled iterations this barrier performed (all phases).
    pub(crate) stalls: u64,
}

impl<'a> AdaptiveWaiter<'a> {
    pub(crate) fn new(parking: &'a Parking) -> Self {
        AdaptiveWaiter {
            parking,
            iters: 0,
            stalls: 0,
        }
    }

    /// One stalled iteration of a barrier wait loop. `still_blocked` is
    /// re-evaluated after park registration to close the lost-wakeup
    /// window; the spin/yield phases ignore it (the caller's loop
    /// re-checks the condition anyway).
    #[inline]
    pub(crate) fn stall(&mut self, still_blocked: impl Fn() -> bool) {
        self.stalls += 1;
        if sched::is_scheduled() {
            // Deterministic exploration: every stall is exactly one baton
            // step; never park (the scheduler runs one thread at a time).
            sched::yield_point();
            return;
        }
        self.iters += 1;
        if self.iters <= WAIT_SPIN_LIMIT {
            std::hint::spin_loop();
        } else if self.iters <= WAIT_SPIN_LIMIT + WAIT_YIELD_LIMIT {
            std::thread::yield_now();
        } else {
            self.parking.park(still_blocked);
        }
    }
}

/// What a quiescence barrier did, for stats plumbing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BarrierOutcome {
    /// Stalled wait iterations (spin, yield, or park) the barrier spent.
    pub stalls: u64,
    /// `true` when the barrier was satisfied by another writer's
    /// completed grace period instead of (or part-way through) its own
    /// clock walk.
    pub shared: bool,
}
