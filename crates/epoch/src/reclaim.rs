//! Grace-period-based deferred reclamation over [`EpochSet`].
//!
//! RW-LE readers are uninstrumented, so a writer that unlinks a node
//! cannot free it immediately: a concurrent reader that fetched a pointer
//! before the unlink may still traverse the node. The paper's RCU
//! heritage suggests the fix: retire the node, and free it only after a
//! *grace period* — a point by which every reader active at retire time
//! has exited its critical section.
//!
//! [`Reclaimer`] implements the classic two-bucket scheme: retirees go to
//! the current bucket; [`Reclaimer::try_flush`] snapshots reader clocks,
//! and once a full quiescence interval has passed, hands the *previous*
//! bucket's nodes back to the caller for freeing.

use std::sync::Mutex;

use crate::EpochSet;

/// A deferred-free queue tied to an [`EpochSet`].
///
/// Thread-safe; typically one per data structure. Values are opaque
/// `u64`s (callers store addresses or handles).
pub struct Reclaimer {
    inner: Mutex<Inner>,
}

struct Inner {
    /// Nodes retired since the last grace-period boundary.
    current: Vec<u64>,
    /// Nodes retired in the previous interval, together with the reader
    /// clock snapshot taken at the boundary.
    previous: Vec<u64>,
    snapshot: Vec<u64>,
}

impl Reclaimer {
    /// Creates an empty reclaimer.
    pub fn new() -> Self {
        Reclaimer {
            inner: Mutex::new(Inner {
                current: Vec::new(),
                previous: Vec::new(),
                snapshot: Vec::new(),
            }),
        }
    }

    /// Retires a value: it becomes freeable one full grace period later.
    pub fn retire(&self, value: u64) {
        self.inner
            .lock()
            .expect("reclaimer poisoned")
            .current
            .push(value);
    }

    /// Number of values awaiting a grace period.
    pub fn pending(&self) -> usize {
        let inner = self.inner.lock().expect("reclaimer poisoned");
        inner.current.len() + inner.previous.len()
    }

    /// Non-blocking grace-period check.
    ///
    /// If every reader that was active at the previous boundary has since
    /// exited (its clock moved), the previous bucket is returned for
    /// freeing and the boundary advances. Returns an empty vector when
    /// the grace period has not yet elapsed (or nothing is pending).
    pub fn try_flush(&self, epochs: &EpochSet) -> Vec<u64> {
        let mut inner = self.inner.lock().expect("reclaimer poisoned");
        // Grace period over? Every snapshotted odd clock must have moved.
        let elapsed = inner
            .snapshot
            .iter()
            .enumerate()
            .all(|(tid, &snap)| snap % 2 == 0 || epochs.read_clock(tid) != snap);
        if !elapsed {
            return Vec::new();
        }
        let freed = std::mem::take(&mut inner.previous);
        inner.previous = std::mem::take(&mut inner.current);
        inner.snapshot = (0..epochs.len()).map(|t| epochs.read_clock(t)).collect();
        freed
    }

    /// Blocking drain: waits out a full grace period (twice, to flush
    /// both buckets) and returns everything. Call only from outside any
    /// read-side critical section.
    pub fn drain(&self, epochs: &EpochSet, skip: Option<usize>) -> Vec<u64> {
        let mut all = Vec::new();
        for _ in 0..3 {
            epochs.synchronize(skip);
            all.extend(self.try_flush(epochs));
        }
        let mut inner = self.inner.lock().expect("reclaimer poisoned");
        all.append(&mut inner.previous);
        all.append(&mut inner.current);
        inner.snapshot.clear();
        all
    }
}

impl Default for Reclaimer {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn retire_then_flush_without_readers() {
        let epochs = EpochSet::new(4);
        let r = Reclaimer::new();
        r.retire(1);
        r.retire(2);
        assert_eq!(r.pending(), 2);
        // First flush: moves current → previous (nothing freeable yet).
        assert!(r.try_flush(&epochs).is_empty());
        // Second flush: previous bucket is past its grace period.
        let freed = r.try_flush(&epochs);
        assert_eq!(freed, vec![1, 2]);
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn active_reader_blocks_grace_period() {
        let epochs = EpochSet::new(2);
        let r = Reclaimer::new();
        r.retire(7);
        epochs.enter(1); // reader active when the boundary snapshot is taken
        assert!(r.try_flush(&epochs).is_empty()); // rotate: snapshot sees odd clock
        r.retire(8);
        // Reader still inside: 7 (older than the reader's entry from the
        // snapshot's point of view) must not be freed yet.
        assert!(r.try_flush(&epochs).is_empty());
        assert!(r.try_flush(&epochs).is_empty());
        epochs.exit(1);
        let freed = r.try_flush(&epochs);
        assert_eq!(freed, vec![7]);
        let freed2 = r.try_flush(&epochs);
        assert_eq!(freed2, vec![8]);
    }

    #[test]
    fn reader_entering_after_snapshot_does_not_block() {
        // A reader that enters after the boundary snapshot entered after
        // every retire in the previous bucket, so it cannot hold those
        // pointers; freeing is safe and must proceed.
        let epochs = EpochSet::new(2);
        let r = Reclaimer::new();
        r.retire(7);
        assert!(r.try_flush(&epochs).is_empty()); // boundary: no readers
        epochs.enter(1); // entered after the snapshot
        assert_eq!(r.try_flush(&epochs), vec![7]);
        epochs.exit(1);
    }

    #[test]
    fn drain_returns_everything() {
        let epochs = EpochSet::new(4);
        let r = Reclaimer::new();
        for v in 0..10 {
            r.retire(v);
        }
        let mut drained = r.drain(&epochs, Some(0));
        drained.sort_unstable();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
        assert_eq!(r.pending(), 0);
    }

    #[test]
    fn concurrent_retire_and_flush() {
        let epochs = Arc::new(EpochSet::new(4));
        let r = Arc::new(Reclaimer::new());
        let mut freed_total = 0usize;
        std::thread::scope(|s| {
            for t in 0..3usize {
                let r = Arc::clone(&r);
                let epochs = Arc::clone(&epochs);
                s.spawn(move || {
                    for i in 0..100u64 {
                        epochs.enter(t);
                        // reader section
                        epochs.exit(t);
                        r.retire((t as u64) << 32 | i);
                    }
                });
            }
            // Flusher thread.
            let r2 = Arc::clone(&r);
            let epochs2 = Arc::clone(&epochs);
            let h = s.spawn(move || {
                let mut freed = 0;
                for _ in 0..200 {
                    freed += r2.try_flush(&epochs2).len();
                    sched::yield_point();
                }
                freed
            });
            freed_total = h.join().unwrap();
        });
        let rest = r.drain(&epochs, None);
        assert_eq!(freed_total + rest.len(), 300, "values lost or duplicated");
    }
}
