//! The big-reader lock (BRLock).

use crate::spin::{SpinGuard, SpinMutex};

/// A [`SpinMutex`] padded out to its own cache line. [`SpinMutex`] is one
/// byte, so a plain `Box<[SpinMutex]>` packs 64 per-thread slots into a
/// single line and every read acquisition false-shares with 63 neighbours
/// — exactly the coherence traffic a big-reader lock exists to avoid. The
/// `benches/indicators.rs` `brlock_padding` group measures the before vs
/// after.
#[repr(align(64))]
struct PaddedSpin(SpinMutex);

/// The paper's **BRLock** baseline (once part of the Linux kernel).
///
/// Each thread owns a private mutex on its own cache line. Acquiring in
/// read mode locks only the caller's own mutex — cheap and
/// contention-free. Acquiring in write mode locks *every* private mutex
/// (in index order, so writers do not deadlock), trading write throughput
/// for read throughput. The paper's variant uses compare-and-swap
/// acquisition, which [`SpinMutex`] does.
pub struct BrLock {
    per_thread: Box<[PaddedSpin]>,
}

impl BrLock {
    /// Creates a BRLock for up to `n` threads (thread ids `0..n`).
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "BRLock needs at least one slot");
        BrLock {
            per_thread: (0..n).map(|_| PaddedSpin(SpinMutex::new())).collect(),
        }
    }

    /// Number of per-thread slots.
    pub fn slots(&self) -> usize {
        self.per_thread.len()
    }

    /// Acquires in read mode: locks only `tid`'s private mutex.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is out of range.
    pub fn read_lock(&self, tid: usize) -> BrReadGuard<'_> {
        BrReadGuard {
            _guard: self.per_thread[tid].0.lock(),
        }
    }

    /// Acquires in write mode: locks all private mutexes in index order.
    pub fn write_lock(&self) -> BrWriteGuard<'_> {
        let guards = self.per_thread.iter().map(|m| m.0.lock()).collect();
        BrWriteGuard { _guards: guards }
    }
}

/// Read-mode RAII guard for [`BrLock`].
pub struct BrReadGuard<'a> {
    _guard: SpinGuard<'a>,
}

/// Write-mode RAII guard for [`BrLock`]; holds every private mutex.
pub struct BrWriteGuard<'a> {
    _guards: Vec<SpinGuard<'a>>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn distinct_readers_do_not_block_each_other() {
        let l = BrLock::new(4);
        let g0 = l.read_lock(0);
        let g1 = l.read_lock(1);
        drop(g0);
        drop(g1);
    }

    #[test]
    fn writer_excludes_all_readers() {
        let l = Arc::new(BrLock::new(4));
        let data = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            // Readers check the invariant (value is even outside writes).
            for tid in 0..3usize {
                let l = Arc::clone(&l);
                let data = Arc::clone(&data);
                s.spawn(move || {
                    for _ in 0..200 {
                        let _g = l.read_lock(tid);
                        assert_eq!(data.load(Ordering::Relaxed) % 2, 0);
                    }
                });
            }
            let l = Arc::clone(&l);
            let data = Arc::clone(&data);
            s.spawn(move || {
                for _ in 0..100 {
                    let _g = l.write_lock();
                    data.fetch_add(1, Ordering::Relaxed); // odd: "mid-update"
                    std::thread::yield_now();
                    data.fetch_add(1, Ordering::Relaxed); // even again
                }
            });
        });
        assert_eq!(data.load(Ordering::Relaxed), 200);
    }

    #[test]
    fn writers_serialize() {
        let l = Arc::new(BrLock::new(2));
        let data = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let l = Arc::clone(&l);
                let data = Arc::clone(&data);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _g = l.write_lock();
                        let v = data.load(Ordering::Relaxed);
                        data.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(data.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic]
    fn out_of_range_tid_panics() {
        let l = BrLock::new(2);
        let _ = l.read_lock(2);
    }
}
