//! FIFO ticket lock.

use std::sync::atomic::{AtomicU64, Ordering};

/// A fair FIFO spin lock: acquisitions are served in ticket order.
///
/// Not part of the paper's baseline set, but a useful fair-SGL reference
/// point for the ablation benchmarks.
#[derive(Default)]
pub struct TicketLock {
    next: AtomicU64,
    serving: AtomicU64,
}

impl TicketLock {
    /// Creates an unlocked ticket lock.
    pub const fn new() -> Self {
        TicketLock {
            next: AtomicU64::new(0),
            serving: AtomicU64::new(0),
        }
    }

    /// Acquires the lock, spinning (with backoff) until our ticket is up.
    pub fn lock(&self) -> TicketGuard<'_> {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let mut backoff = sched::Backoff::new();
        while self.serving.load(Ordering::Acquire) != ticket {
            backoff.snooze();
        }
        TicketGuard { lock: self }
    }

    /// Whether anyone currently holds (or queues for) the lock.
    pub fn is_contended(&self) -> bool {
        self.next.load(Ordering::Relaxed) != self.serving.load(Ordering::Relaxed)
    }
}

/// RAII guard; passes the lock to the next ticket on drop.
pub struct TicketGuard<'a> {
    lock: &'a TicketLock,
}

impl Drop for TicketGuard<'_> {
    fn drop(&mut self) {
        self.lock.serving.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_is_exclusive_and_fair_total() {
        let l = Arc::new(TicketLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _g = l.lock();
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
        assert!(!l.is_contended());
    }
}
