//! Test-and-test-and-set spin lock.

use std::sync::atomic::{AtomicBool, Ordering};

/// A yielding test-and-test-and-set spin lock.
///
/// Used directly as the paper's **SGL** baseline (a single global mutex
/// protecting every critical section) and as the building block of
/// [`crate::BrLock`]. This lock carries no data: the simulated memory it
/// protects lives elsewhere, as in the original C benchmarks.
#[derive(Default)]
pub struct SpinMutex {
    locked: AtomicBool,
}

impl SpinMutex {
    /// Creates an unlocked mutex.
    pub const fn new() -> Self {
        SpinMutex {
            locked: AtomicBool::new(false),
        }
    }

    /// Acquires the lock, spinning (with backoff) until available.
    pub fn lock(&self) -> SpinGuard<'_> {
        let mut backoff = sched::Backoff::new();
        loop {
            // Test-and-test-and-set: spin on the cheap load first.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self
                .locked
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinGuard { lock: self };
            }
        }
    }

    /// Tries to acquire without blocking.
    pub fn try_lock(&self) -> Option<SpinGuard<'_>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock is currently held.
    pub fn is_locked(&self) -> bool {
        self.locked.load(Ordering::Relaxed)
    }
}

/// RAII guard; releases the [`SpinMutex`] on drop.
pub struct SpinGuard<'a> {
    lock: &'a SpinMutex,
}

impl Drop for SpinGuard<'_> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn lock_unlock() {
        let m = SpinMutex::new();
        assert!(!m.is_locked());
        {
            let _g = m.lock();
            assert!(m.is_locked());
            assert!(m.try_lock().is_none());
        }
        assert!(!m.is_locked());
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        let m = Arc::new(SpinMutex::new());
        let counter = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..1000 {
                        let _g = m.lock();
                        // Non-atomic read-modify-write protected by the lock.
                        let v = counter.load(Ordering::Relaxed);
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
