//! Baseline synchronization schemes used by the paper's evaluation (§4):
//!
//! * [`SpinMutex`] — a test-and-test-and-set spin lock; one instance is
//!   the **SGL** (single global lock) baseline.
//! * [`PthreadRwLock`] — a counter-based read-write lock modelled on the
//!   pthread implementation: an internal mutex protects reader/writer
//!   counters, and writers are preferred once waiting so they cannot
//!   starve ("the values of the counters are used to ensure fairness").
//! * [`BrLock`] — the big-reader lock once used in the Linux kernel:
//!   readers lock only a private per-thread mutex; writers lock all of
//!   them, trading write throughput for read throughput.
//! * [`TicketLock`] — a FIFO spin lock, useful as a fair SGL variant.
//! * [`IndicatedRwLock`] — [`PthreadRwLock`] with a pluggable
//!   [`rind::ReaderIndicator`] bolted on, BRAVO-style: bias-certified
//!   readers bypass the centralized lock entirely.
//!
//! All spin loops yield to the scheduler: the reproduction hosts may have
//! a single hardware CPU, where busy-waiting would starve the lock holder.

#![warn(missing_docs)]

mod brlock;
mod indicated;
mod rwlock;
mod spin;
mod ticket;

pub use brlock::{BrLock, BrReadGuard, BrWriteGuard};
pub use indicated::{IndReadGuard, IndWriteGuard, IndicatedRwLock};
pub use rwlock::{PthreadRwLock, RwReadGuard, RwWriteGuard};
pub use spin::{SpinGuard, SpinMutex};
pub use ticket::{TicketGuard, TicketLock};
