//! A counter-based read-write lock modelled on the pthread implementation.

use std::sync::{Condvar, Mutex};

#[derive(Default)]
struct State {
    /// Readers currently inside.
    active_readers: u64,
    /// Writers blocked waiting for the lock.
    waiting_writers: u64,
    /// A writer currently inside.
    writer_active: bool,
}

/// The paper's **RWL** baseline: two counters synchronized by an internal
/// mutex, with condition variables for blocking.
///
/// Writer preference is applied once a writer is waiting (new readers
/// block), preventing writer starvation — the fairness property the paper
/// attributes to the pthread implementation.
#[derive(Default)]
pub struct PthreadRwLock {
    state: Mutex<State>,
    readers_cv: Condvar,
    writers_cv: Condvar,
}

impl PthreadRwLock {
    /// Creates an unlocked read-write lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Acquires the lock in shared (read) mode.
    pub fn read_lock(&self) -> RwReadGuard<'_> {
        let mut st = self.state.lock().expect("rwlock poisoned");
        while st.writer_active || st.waiting_writers > 0 {
            st = self.readers_cv.wait(st).expect("rwlock poisoned");
        }
        st.active_readers += 1;
        RwReadGuard { lock: self }
    }

    /// Acquires the lock in exclusive (write) mode.
    pub fn write_lock(&self) -> RwWriteGuard<'_> {
        let mut st = self.state.lock().expect("rwlock poisoned");
        st.waiting_writers += 1;
        while st.writer_active || st.active_readers > 0 {
            st = self.writers_cv.wait(st).expect("rwlock poisoned");
        }
        st.waiting_writers -= 1;
        st.writer_active = true;
        RwWriteGuard { lock: self }
    }

    fn read_unlock(&self) {
        let mut st = self.state.lock().expect("rwlock poisoned");
        st.active_readers -= 1;
        if st.active_readers == 0 && st.waiting_writers > 0 {
            self.writers_cv.notify_one();
        }
    }

    fn write_unlock(&self) {
        let mut st = self.state.lock().expect("rwlock poisoned");
        st.writer_active = false;
        if st.waiting_writers > 0 {
            self.writers_cv.notify_one();
        } else {
            self.readers_cv.notify_all();
        }
    }
}

/// Shared-mode RAII guard for [`PthreadRwLock`].
pub struct RwReadGuard<'a> {
    lock: &'a PthreadRwLock,
}

impl Drop for RwReadGuard<'_> {
    fn drop(&mut self) {
        self.lock.read_unlock();
    }
}

/// Exclusive-mode RAII guard for [`PthreadRwLock`].
pub struct RwWriteGuard<'a> {
    lock: &'a PthreadRwLock,
}

impl Drop for RwWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.write_unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn readers_share() {
        let l = PthreadRwLock::new();
        let g1 = l.read_lock();
        let g2 = l.read_lock();
        drop(g1);
        drop(g2);
    }

    #[test]
    fn writer_excludes_writers_and_readers() {
        let l = Arc::new(PthreadRwLock::new());
        let data = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = Arc::clone(&l);
                let data = Arc::clone(&data);
                s.spawn(move || {
                    for _ in 0..500 {
                        let _g = l.write_lock();
                        let v = data.load(Ordering::Relaxed);
                        data.store(v + 1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(data.load(Ordering::Relaxed), 2000);
    }

    #[test]
    fn readers_see_consistent_writer_updates() {
        // The writer keeps an invariant (two cells equal); readers must
        // never observe it broken.
        let l = Arc::new(PthreadRwLock::new());
        let a = Arc::new(AtomicU64::new(0));
        let b = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
                s.spawn(move || {
                    for _ in 0..300 {
                        let _g = l.read_lock();
                        let x = a.load(Ordering::Relaxed);
                        let y = b.load(Ordering::Relaxed);
                        assert_eq!(x, y, "invariant broken under read lock");
                    }
                });
            }
            let (l, a, b) = (Arc::clone(&l), Arc::clone(&a), Arc::clone(&b));
            s.spawn(move || {
                for i in 1..=300u64 {
                    let _g = l.write_lock();
                    a.store(i, Ordering::Relaxed);
                    std::thread::yield_now();
                    b.store(i, Ordering::Relaxed);
                }
            });
        });
    }

    #[test]
    fn waiting_writer_blocks_new_readers() {
        // With a writer waiting, a new reader must not jump the queue:
        // acquire read → spawn writer (blocks) → new reader must block
        // until the writer got through.
        let l = Arc::new(PthreadRwLock::new());
        let order = Arc::new(Mutex::new(Vec::new()));
        let g = l.read_lock();
        std::thread::scope(|s| {
            let lw = Arc::clone(&l);
            let ow = Arc::clone(&order);
            s.spawn(move || {
                let _g = lw.write_lock();
                ow.lock().unwrap().push("writer");
            });
            // Give the writer time to enqueue.
            // xlint: allow(a5) -- queue order is internal to the lock:
            // there is no public API to observe "writer enqueued but not
            // yet granted", so the handoff order can only be staged by
            // real time. Worst case under load is a vacuous pass.
            std::thread::sleep(std::time::Duration::from_millis(20));
            let lr = Arc::clone(&l);
            let or = Arc::clone(&order);
            s.spawn(move || {
                let _g = lr.read_lock();
                or.lock().unwrap().push("reader");
            });
            // xlint: allow(a5) -- same staging as above, for the reader.
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(g); // release the original read lock; writer goes first
        });
        assert_eq!(*order.lock().unwrap(), vec!["writer", "reader"]);
    }
}
