//! A read-write lock with a pluggable reader indicator (BRAVO-style).
//!
//! [`IndicatedRwLock`] bolts a [`rind::ReaderIndicator`] onto the
//! [`PthreadRwLock`](crate::PthreadRwLock) baseline, exactly the way BRAVO
//! (arXiv:1810.01553) retrofits an existing rwlock: readers first try to
//! publish into the indicator — a bias-certified publication admits the
//! read without touching the underlying lock at all — and only fall back
//! to the centralized `read_lock` when the indicator declines. Writers
//! take the underlying lock in write mode, raise a writer-present word,
//! revoke the bias, and wait published readers out before proceeding.
//!
//! Soundness is the bias-word dichotomy (see `rind` and
//! docs/PROTOCOL.md): a certified reader's slot is provably visible to
//! any collecting writer's scan, and a published-but-uncertified reader
//! (the cloned indicator) runs a Dekker-style check of the writer word
//! that pairs with the writer's raise-then-scan order.

use std::sync::atomic::{AtomicU64, Ordering};

use rind::{collect_wait, Indicator, IndicatorKind, Publish, ReaderIndicator};

use crate::rwlock::{PthreadRwLock, RwReadGuard, RwWriteGuard};

/// A [`PthreadRwLock`] with distributed read-side accounting.
pub struct IndicatedRwLock {
    inner: PthreadRwLock,
    ind: Indicator,
    /// Writer-present word (Dekker partner of uncertified publications):
    /// raised after the underlying write lock is held, lowered before it
    /// is released.
    wactive: AtomicU64,
}

impl IndicatedRwLock {
    /// Creates an unlocked lock using the given indicator scheme, sized
    /// for thread ids `0..max_threads`.
    pub fn new(kind: IndicatorKind, max_threads: usize) -> Self {
        IndicatedRwLock {
            inner: PthreadRwLock::new(),
            ind: Indicator::new(kind, max_threads),
            wactive: AtomicU64::new(0),
        }
    }

    /// The indicator scheme in use.
    pub fn kind(&self) -> IndicatorKind {
        self.ind.kind()
    }

    /// The indicator itself (tests and benches).
    pub fn indicator(&self) -> &dyn ReaderIndicator {
        &self.ind
    }

    /// Acquires in shared mode. `tid` is the caller's thread id (only
    /// used by the indicator; any id below `max_threads` works, but
    /// concurrent readers sharing an id would collide on their slot).
    pub fn read_lock(&self, tid: usize) -> IndReadGuard<'_> {
        match self.ind.publish(tid) {
            Publish::Certified(slot) => {
                // Certified: the publication alone excludes writers (any
                // writer must revoke the bias and scan us out first).
                return IndReadGuard {
                    lock: self,
                    mode: ReadMode::Fast { tid, slot },
                };
            }
            Publish::Published(slot) => {
                sched::step();
                // Dekker check: our slot store (SeqCst) precedes this
                // load, the writer's wactive store precedes its scan —
                // one of the two must see the other.
                if self.wactive.load(Ordering::SeqCst) == 0 {
                    return IndReadGuard {
                        lock: self,
                        mode: ReadMode::Fast { tid, slot },
                    };
                }
                self.ind.retire(tid, slot);
            }
            Publish::Declined => {}
        }
        let guard = self.inner.read_lock();
        self.ind.note_slow_read();
        IndReadGuard {
            lock: self,
            mode: ReadMode::Slow(guard),
        }
    }

    /// Acquires in exclusive mode: underlying write lock, writer word,
    /// bias revocation, then a scan waiting published readers out.
    pub fn write_lock(&self) -> IndWriteGuard<'_> {
        let inner = self.inner.write_lock();
        sched::step();
        self.wactive.store(1, Ordering::SeqCst);
        let rev = self.ind.begin_collect();
        collect_wait(&self.ind, &rev, None);
        IndWriteGuard {
            lock: self,
            revoked: rev.revoked,
            _inner: inner,
        }
    }
}

enum ReadMode<'a> {
    /// Admitted via the indicator; the underlying lock was never touched.
    Fast { tid: usize, slot: u32 },
    /// Fell through to the underlying centralized lock.
    Slow(#[expect(dead_code)] RwReadGuard<'a>),
}

/// Shared-mode RAII guard for [`IndicatedRwLock`].
pub struct IndReadGuard<'a> {
    lock: &'a IndicatedRwLock,
    mode: ReadMode<'a>,
}

impl IndReadGuard<'_> {
    /// Whether this acquisition took the indicator fast path.
    pub fn is_fast(&self) -> bool {
        matches!(self.mode, ReadMode::Fast { .. })
    }
}

impl Drop for IndReadGuard<'_> {
    fn drop(&mut self) {
        if let ReadMode::Fast { tid, slot } = self.mode {
            self.lock.ind.retire(tid, slot);
        }
    }
}

/// Exclusive-mode RAII guard for [`IndicatedRwLock`].
pub struct IndWriteGuard<'a> {
    lock: &'a IndicatedRwLock,
    revoked: bool,
    _inner: RwWriteGuard<'a>,
}

impl IndWriteGuard<'_> {
    /// Whether this acquisition revoked the read bias (benches/stats).
    pub fn revoked(&self) -> bool {
        self.revoked
    }
}

impl Drop for IndWriteGuard<'_> {
    fn drop(&mut self) {
        self.lock.wactive.store(0, Ordering::SeqCst);
        self.lock.ind.end_collect();
        // _inner drops last, releasing the underlying lock.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn bravo_reads_certify_until_revoked() {
        let l = IndicatedRwLock::new(IndicatorKind::Bravo, 4);
        assert!(l.indicator().bias_enabled());
        {
            let g = l.read_lock(0);
            assert!(g.is_fast());
        }
        {
            let w = l.write_lock();
            assert!(w.revoked());
        }
        // Bias is down until the rebias policy restores it.
        assert!(!l.indicator().bias_enabled());
        let g = l.read_lock(0);
        assert!(!g.is_fast());
    }

    #[test]
    fn cloned_reads_publish_and_yield_to_writer() {
        let l = IndicatedRwLock::new(IndicatorKind::Cloned, 4);
        {
            let g = l.read_lock(1);
            assert!(g.is_fast());
        }
        let w = l.write_lock();
        assert!(!w.revoked());
        drop(w);
        assert!(l.read_lock(1).is_fast());
    }

    #[test]
    fn central_reads_always_take_the_underlying_lock() {
        let l = IndicatedRwLock::new(IndicatorKind::Central, 4);
        assert!(!l.read_lock(0).is_fast());
    }

    #[test]
    fn writer_excludes_all_reader_paths() {
        for kind in [
            IndicatorKind::Central,
            IndicatorKind::Bravo,
            IndicatorKind::Cloned,
        ] {
            let l = Arc::new(IndicatedRwLock::new(kind, 4));
            let data = Arc::new(AtomicU64::new(0));
            std::thread::scope(|s| {
                // Readers check the invariant (value is even outside
                // writes) on whatever path the indicator admits them.
                for tid in 0..3usize {
                    let l = Arc::clone(&l);
                    let data = Arc::clone(&data);
                    s.spawn(move || {
                        for _ in 0..200 {
                            let _g = l.read_lock(tid);
                            assert_eq!(data.load(Ordering::Relaxed) % 2, 0);
                        }
                    });
                }
                let l = Arc::clone(&l);
                let data = Arc::clone(&data);
                s.spawn(move || {
                    for _ in 0..100 {
                        let _g = l.write_lock();
                        data.fetch_add(1, Ordering::Relaxed); // odd: "mid-update"
                        std::thread::yield_now();
                        data.fetch_add(1, Ordering::Relaxed); // even again
                    }
                });
            });
            assert_eq!(data.load(Ordering::Relaxed), 200, "kind {kind:?}");
        }
    }
}
