//! The synchronization schemes compared in the paper's evaluation, behind
//! one dispatcher so every workload drives identical critical-section
//! bodies.

use std::sync::Arc;

use hle::{AdaptiveHle, Hle, ScmHle};
use htm::{AbortCause, MemAccess, ThreadCtx};
use locks::{BrLock, PthreadRwLock, SpinMutex};
use rwle::{RwLe, RwLeConfig, RwLeError};
use simmem::SimAlloc;
use stats::{CommitKind, ThreadStats};

/// Which synchronization scheme to build (the paper's legend names).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// RW-LE optimistic: 5 × HTM → 5 × ROT → global lock.
    RwLeOpt,
    /// RW-LE pessimistic: 5 × ROT → global lock (writers serialized).
    RwLePes,
    /// RW-LE with ROTs disabled (fairness experiment baseline).
    RwLeHtmOnly,
    /// Fair RW-LE with ROTs disabled (the Figure 7 contender).
    RwLeFair,
    /// Classic single-lock hardware lock elision.
    Hle,
    /// HLE with software-assisted conflict management (Afek et al.).
    ScmHle,
    /// HLE with a self-tuning retry budget (Diegues & Romano).
    AdaptiveHle,
    /// Big-reader lock.
    BrLock,
    /// pthread-style read-write lock.
    Rwl,
    /// Single global (spin) lock.
    Sgl,
}

impl SchemeKind {
    /// All schemes plotted in the sensitivity figures.
    pub const SENSITIVITY: [SchemeKind; 6] = [
        SchemeKind::RwLeOpt,
        SchemeKind::RwLePes,
        SchemeKind::Hle,
        SchemeKind::BrLock,
        SchemeKind::Rwl,
        SchemeKind::Sgl,
    ];

    /// Figure-legend label.
    pub fn label(self) -> &'static str {
        match self {
            SchemeKind::RwLeOpt => "RW-LE_OPT",
            SchemeKind::RwLePes => "RW-LE_PES",
            SchemeKind::RwLeHtmOnly => "RW-LE",
            SchemeKind::RwLeFair => "RW-LE_FAIR",
            SchemeKind::Hle => "HLE",
            SchemeKind::ScmHle => "HLE-SCM",
            SchemeKind::AdaptiveHle => "HLE-AD",
            SchemeKind::BrLock => "BRLock",
            SchemeKind::Rwl => "RWL",
            SchemeKind::Sgl => "SGL",
        }
    }

    /// Parses a command-line name (case-insensitive).
    pub fn parse(s: &str) -> Option<SchemeKind> {
        Some(match s.to_ascii_lowercase().as_str() {
            "rw-le_opt" | "rwle-opt" | "opt" => SchemeKind::RwLeOpt,
            "rw-le_pes" | "rwle-pes" | "pes" => SchemeKind::RwLePes,
            "rw-le" | "rwle-htm" => SchemeKind::RwLeHtmOnly,
            "rw-le_fair" | "rwle-fair" | "fair" => SchemeKind::RwLeFair,
            "hle" => SchemeKind::Hle,
            "hle-scm" | "scm" => SchemeKind::ScmHle,
            "hle-ad" | "adaptive" => SchemeKind::AdaptiveHle,
            "brlock" => SchemeKind::BrLock,
            "rwl" => SchemeKind::Rwl,
            "sgl" => SchemeKind::Sgl,
            _ => return None,
        })
    }
}

/// A built synchronization scheme guarding one logical read-write lock.
///
/// `Arc`-cheap to clone into worker threads.
#[derive(Clone)]
pub enum Scheme {
    /// Any RW-LE variant (configuration decides which).
    RwLe(Arc<RwLe>),
    /// Classic HLE (readers and writers both elide the same lock).
    Hle(Arc<Hle>),
    /// HLE + software-assisted conflict management.
    ScmHle(Arc<ScmHle>),
    /// HLE + self-tuning retry budget.
    AdaptiveHle(Arc<AdaptiveHle>),
    /// Big-reader lock.
    BrLock(Arc<BrLock>),
    /// pthread-style read-write lock.
    Rwl(Arc<PthreadRwLock>),
    /// Single global spin lock.
    Sgl(Arc<SpinMutex>),
}

impl Scheme {
    /// Builds `kind` with lock words allocated from `alloc` and room for
    /// `max_threads` threads.
    pub fn build(
        kind: SchemeKind,
        alloc: &SimAlloc,
        max_threads: usize,
    ) -> Result<Self, RwLeError> {
        Ok(match kind {
            SchemeKind::RwLeOpt => {
                Scheme::RwLe(Arc::new(RwLe::new(alloc, max_threads, RwLeConfig::opt())?))
            }
            SchemeKind::RwLePes => {
                Scheme::RwLe(Arc::new(RwLe::new(alloc, max_threads, RwLeConfig::pes())?))
            }
            SchemeKind::RwLeHtmOnly => Scheme::RwLe(Arc::new(RwLe::new(
                alloc,
                max_threads,
                RwLeConfig::htm_only(),
            )?)),
            SchemeKind::RwLeFair => Scheme::RwLe(Arc::new(RwLe::new(
                alloc,
                max_threads,
                RwLeConfig::fair_htm_only(),
            )?)),
            SchemeKind::Hle => Scheme::Hle(Arc::new(Hle::new(alloc.alloc(1)?))),
            SchemeKind::ScmHle => Scheme::ScmHle(Arc::new(ScmHle::new(alloc.alloc(1)?))),
            SchemeKind::AdaptiveHle => {
                Scheme::AdaptiveHle(Arc::new(AdaptiveHle::new(alloc.alloc(1)?)))
            }
            SchemeKind::BrLock => Scheme::BrLock(Arc::new(BrLock::new(max_threads))),
            SchemeKind::Rwl => Scheme::Rwl(Arc::new(PthreadRwLock::new())),
            SchemeKind::Sgl => Scheme::Sgl(Arc::new(SpinMutex::new())),
        })
    }

    /// Builds an RW-LE scheme with a custom configuration (for ablations).
    pub fn build_rwle(
        alloc: &SimAlloc,
        max_threads: usize,
        cfg: RwLeConfig,
    ) -> Result<Self, RwLeError> {
        Ok(Scheme::RwLe(Arc::new(RwLe::new(alloc, max_threads, cfg)?)))
    }

    /// Executes `body` as a read-side critical section.
    pub fn read_cs<R>(
        &self,
        ctx: &mut ThreadCtx,
        stats: &mut ThreadStats,
        body: &mut dyn FnMut(&mut dyn MemAccess) -> Result<R, AbortCause>,
    ) -> R {
        match self {
            Scheme::RwLe(l) => l.read_cs(ctx, stats, body),
            Scheme::Hle(l) => l.execute(ctx, stats, body),
            Scheme::ScmHle(l) => l.execute(ctx, stats, body),
            Scheme::AdaptiveHle(l) => l.execute(ctx, stats, body),
            Scheme::BrLock(l) => {
                let _g = l.read_lock(ctx.slot());
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Uninstrumented);
                r
            }
            Scheme::Rwl(l) => {
                let _g = l.read_lock();
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Uninstrumented);
                r
            }
            Scheme::Sgl(l) => {
                let _g = l.lock();
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Sgl);
                r
            }
        }
    }

    /// Executes `body` as a write-side critical section.
    pub fn write_cs<R>(
        &self,
        ctx: &mut ThreadCtx,
        stats: &mut ThreadStats,
        body: &mut dyn FnMut(&mut dyn MemAccess) -> Result<R, AbortCause>,
    ) -> R {
        match self {
            Scheme::RwLe(l) => l.write_cs(ctx, stats, body),
            Scheme::Hle(l) => l.execute(ctx, stats, body),
            Scheme::ScmHle(l) => l.execute(ctx, stats, body),
            Scheme::AdaptiveHle(l) => l.execute(ctx, stats, body),
            Scheme::BrLock(l) => {
                let _g = l.write_lock();
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Sgl);
                r
            }
            Scheme::Rwl(l) => {
                let _g = l.write_lock();
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Sgl);
                r
            }
            Scheme::Sgl(l) => {
                let _g = l.lock();
                let r = run_nt(ctx, body);
                stats.commit(CommitKind::Sgl);
                r
            }
        }
    }
}

fn run_nt<R>(
    ctx: &ThreadCtx,
    body: &mut dyn FnMut(&mut dyn MemAccess) -> Result<R, AbortCause>,
) -> R {
    let mut nt = ctx.non_tx();
    body(&mut nt).expect("non-transactional execution cannot abort")
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime};
    use simmem::SharedMem;

    #[test]
    fn parse_roundtrips_labels() {
        for k in [
            SchemeKind::RwLeOpt,
            SchemeKind::RwLePes,
            SchemeKind::RwLeHtmOnly,
            SchemeKind::RwLeFair,
            SchemeKind::Hle,
            SchemeKind::ScmHle,
            SchemeKind::AdaptiveHle,
            SchemeKind::BrLock,
            SchemeKind::Rwl,
            SchemeKind::Sgl,
        ] {
            assert_eq!(SchemeKind::parse(k.label()), Some(k), "label {}", k.label());
        }
        assert_eq!(SchemeKind::parse("nonsense"), None);
    }

    #[test]
    fn every_scheme_runs_a_counter_correctly() {
        for kind in [
            SchemeKind::RwLeOpt,
            SchemeKind::RwLePes,
            SchemeKind::RwLeHtmOnly,
            SchemeKind::RwLeFair,
            SchemeKind::Hle,
            SchemeKind::ScmHle,
            SchemeKind::AdaptiveHle,
            SchemeKind::BrLock,
            SchemeKind::Rwl,
            SchemeKind::Sgl,
        ] {
            let mem = Arc::new(SharedMem::new_lines(256));
            let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
            let alloc = SimAlloc::new(Arc::clone(&mem));
            let scheme = Scheme::build(kind, &alloc, 8).unwrap();
            let data = alloc.alloc(2).unwrap();
            std::thread::scope(|s| {
                for _ in 0..3 {
                    let rt = Arc::clone(&rt);
                    let scheme = scheme.clone();
                    s.spawn(move || {
                        let mut ctx = rt.register();
                        let mut st = ThreadStats::new();
                        for i in 0..60 {
                            if i % 3 == 0 {
                                scheme.write_cs(&mut ctx, &mut st, &mut |acc| {
                                    let v = acc.read(data)?;
                                    acc.write(data, v + 1)?;
                                    acc.write(data.offset(1), v + 1)?;
                                    Ok(())
                                });
                            } else {
                                scheme.read_cs(&mut ctx, &mut st, &mut |acc| {
                                    let a = acc.read(data)?;
                                    let b = acc.read(data.offset(1))?;
                                    assert_eq!(a, b, "torn read under {kind:?}");
                                    Ok(())
                                });
                            }
                        }
                        assert_eq!(st.ops, 60);
                    });
                }
            });
            assert_eq!(mem.load(data), 60, "lost update under {kind:?}");
        }
    }
}
