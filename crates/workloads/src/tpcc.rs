//! A TPC-C port on an in-memory store (§4.2).
//!
//! Like the paper, the five TPC-C transaction profiles run against an
//! in-memory database; read-only profiles (order-status, stock-level)
//! become read-side critical sections and update profiles (new-order,
//! payment, delivery) become write-side critical sections of one global
//! read-write lock.
//!
//! The database is scaled to fit simulated memory (warehouse count,
//! items, customers per district are parameters); the footprint *shape*
//! is preserved: stock-level scans the order lines of the last 20 orders
//! plus one stock line per order line, overflowing HTM read capacity just
//! as the paper reports (≈45% of read sections under HLE), while payment
//! touches a handful of lines.
//!
//! Transaction parameters are drawn **outside** the critical sections
//! (bodies must be re-runnable verbatim under speculative retry).

use htm::{AbortCause, MemAccess};
use rand::rngs::SmallRng;
use rand::Rng;
use simmem::{Addr, AllocError, SimAlloc};

/// Districts per warehouse (TPC-C fixed).
pub const DISTRICTS_PER_WH: u32 = 10;
/// Maximum order lines per order (TPC-C fixed).
pub const MAX_ORDER_LINES: u32 = 15;
/// Orders retained per district (ring buffer).
pub const ORDER_RING: u32 = 32;
/// Words per order record: header (4) + 15 × (item, qty), placed in a
/// 64-word (power-of-two) stride within the per-district ring.
const ORDER_STRIDE_WORDS: u32 = 64;
const _: () = assert!(4 + MAX_ORDER_LINES * 2 <= ORDER_STRIDE_WORDS);

// Record field offsets.
const WH_YTD: u32 = 0;
const D_NEXT_O_ID: u32 = 0;
const D_YTD: u32 = 1;
const D_NEXT_DELIVERY: u32 = 2;
const C_BALANCE: u32 = 0;
const C_YTD_PAYMENT: u32 = 1;
const C_PAYMENT_CNT: u32 = 2;
const C_DELIVERY_CNT: u32 = 3;
const C_LAST_O_ID: u32 = 4;
const S_QUANTITY: u32 = 0;
const S_YTD: u32 = 1;
const S_ORDER_CNT: u32 = 2;
const I_PRICE: u32 = 0;
const O_ID: u32 = 0;
const O_C_ID: u32 = 1;
const O_OL_CNT: u32 = 2;
const O_DELIVERED: u32 = 3;

/// Scale parameters of a [`Tpcc`] database.
#[derive(Debug, Clone, Copy)]
pub struct TpccScale {
    /// Warehouses.
    pub warehouses: u32,
    /// Customers per district.
    pub customers_per_district: u32,
    /// Item catalogue size.
    pub items: u32,
}

impl Default for TpccScale {
    fn default() -> Self {
        TpccScale {
            warehouses: 2,
            customers_per_district: 30,
            items: 1000,
        }
    }
}

/// Parameters of one new-order transaction, drawn before the critical
/// section.
#[derive(Debug, Clone)]
pub struct NewOrderParams {
    /// Warehouse, district, customer.
    pub w: u32,
    /// District within the warehouse.
    pub d: u32,
    /// Customer within the district.
    pub c: u32,
    /// `(item_id, quantity)` pairs, 5–15 of them.
    pub lines: Vec<(u32, u64)>,
}

/// The in-memory TPC-C database.
pub struct Tpcc {
    scale: TpccScale,
    wh_base: Addr,
    dist_base: Addr,
    cust_base: Addr,
    stock_base: Addr,
    item_base: Addr,
    order_base: Addr,
}

impl Tpcc {
    /// Builds and populates the database single-threadedly.
    pub fn build(alloc: &SimAlloc, scale: TpccScale) -> Result<Self, AllocError> {
        let mem = alloc.mem();
        let n_dist = scale.warehouses * DISTRICTS_PER_WH;
        let n_cust = n_dist * scale.customers_per_district;
        let n_stock = scale.warehouses * scale.items;
        let wh_base = alloc.alloc(scale.warehouses * 8)?;
        let dist_base = alloc.alloc(n_dist * 8)?;
        let cust_base = alloc.alloc(n_cust * 8)?;
        let stock_base = alloc.alloc(n_stock * 8)?;
        let item_base = alloc.alloc(scale.items * 8)?;
        let order_base = alloc.alloc(n_dist * ORDER_RING * ORDER_STRIDE_WORDS)?;
        for i in 0..scale.items {
            mem.store(
                item_base.offset(i * 8 + I_PRICE),
                100 + (i as u64 * 7) % 9900,
            );
        }
        for s in 0..n_stock {
            mem.store(stock_base.offset(s * 8 + S_QUANTITY), 50 + (s as u64 % 50));
        }
        Ok(Tpcc {
            scale,
            wh_base,
            dist_base,
            cust_base,
            stock_base,
            item_base,
            order_base,
        })
    }

    /// The database's scale parameters.
    pub fn scale(&self) -> &TpccScale {
        &self.scale
    }

    /// Lines needed for a given scale (for memory sizing).
    ///
    /// Each table is one allocator block, rounded up to a power-of-two
    /// number of words, so the estimate applies the same rounding.
    pub fn lines_needed(scale: &TpccScale) -> u64 {
        let n_dist = (scale.warehouses * DISTRICTS_PER_WH) as u64;
        let n_cust = n_dist * scale.customers_per_district as u64;
        let n_stock = (scale.warehouses * scale.items) as u64;
        let block = |words: u64| words.max(8).next_power_of_two() / 8;
        block(scale.warehouses as u64 * 8)
            + block(n_dist * 8)
            + block(n_cust * 8)
            + block(n_stock * 8)
            + block(scale.items as u64 * 8)
            + block(n_dist * ORDER_RING as u64 * ORDER_STRIDE_WORDS as u64)
            + 16
    }

    #[inline]
    fn wh(&self, w: u32) -> Addr {
        self.wh_base.offset(w * 8)
    }

    #[inline]
    fn district(&self, w: u32, d: u32) -> Addr {
        self.dist_base.offset((w * DISTRICTS_PER_WH + d) * 8)
    }

    #[inline]
    fn customer(&self, w: u32, d: u32, c: u32) -> Addr {
        self.cust_base
            .offset(((w * DISTRICTS_PER_WH + d) * self.scale.customers_per_district + c) * 8)
    }

    #[inline]
    fn stock(&self, w: u32, item: u32) -> Addr {
        self.stock_base.offset((w * self.scale.items + item) * 8)
    }

    #[inline]
    fn item(&self, item: u32) -> Addr {
        self.item_base.offset(item * 8)
    }

    #[inline]
    fn order_slot(&self, w: u32, d: u32, o_id: u64) -> Addr {
        let district = (w * DISTRICTS_PER_WH + d) as u64;
        let slot = o_id % ORDER_RING as u64;
        self.order_base
            .offset(((district * ORDER_RING as u64 + slot) * ORDER_STRIDE_WORDS as u64) as u32)
    }

    /// Draws new-order parameters (outside the critical section).
    pub fn gen_new_order(&self, rng: &mut SmallRng) -> NewOrderParams {
        let n_lines = rng.gen_range(5..=MAX_ORDER_LINES);
        NewOrderParams {
            w: rng.gen_range(0..self.scale.warehouses),
            d: rng.gen_range(0..DISTRICTS_PER_WH),
            c: rng.gen_range(0..self.scale.customers_per_district),
            lines: (0..n_lines)
                .map(|_| (rng.gen_range(0..self.scale.items), rng.gen_range(1..=10u64)))
                .collect(),
        }
    }

    /// **New-order** (write): allocate the next order id, write the order
    /// record into the district's ring, and update every line's stock.
    pub fn new_order(
        &self,
        acc: &mut dyn MemAccess,
        p: &NewOrderParams,
    ) -> Result<u64, AbortCause> {
        let dist = self.district(p.w, p.d);
        let o_id = acc.read(dist.offset(D_NEXT_O_ID))?;
        acc.write(dist.offset(D_NEXT_O_ID), o_id + 1)?;
        let order = self.order_slot(p.w, p.d, o_id);
        acc.write(order.offset(O_ID), o_id)?;
        acc.write(order.offset(O_C_ID), p.c as u64)?;
        acc.write(order.offset(O_OL_CNT), p.lines.len() as u64)?;
        acc.write(order.offset(O_DELIVERED), 0)?;
        let mut total = 0u64;
        for (i, &(item, qty)) in p.lines.iter().enumerate() {
            let price = acc.read(self.item(item).offset(I_PRICE))?;
            total += price * qty;
            let stock = self.stock(p.w, item);
            let q = acc.read(stock.offset(S_QUANTITY))?;
            let new_q = if q > qty + 10 { q - qty } else { q + 91 - qty };
            acc.write(stock.offset(S_QUANTITY), new_q)?;
            let ytd = acc.read(stock.offset(S_YTD))?;
            acc.write(stock.offset(S_YTD), ytd + qty)?;
            let cnt = acc.read(stock.offset(S_ORDER_CNT))?;
            acc.write(stock.offset(S_ORDER_CNT), cnt + 1)?;
            let base = 4 + (i as u32) * 2;
            acc.write(order.offset(base), item as u64)?;
            acc.write(order.offset(base + 1), qty)?;
        }
        let cust = self.customer(p.w, p.d, p.c);
        acc.write(cust.offset(C_LAST_O_ID), o_id + 1)?; // +1: 0 means "none"
        Ok(total)
    }

    /// **Payment** (write): move `amount` through warehouse, district and
    /// customer balances.
    pub fn payment(
        &self,
        acc: &mut dyn MemAccess,
        w: u32,
        d: u32,
        c: u32,
        amount: u64,
    ) -> Result<(), AbortCause> {
        let wh = self.wh(w);
        let ytd = acc.read(wh.offset(WH_YTD))?;
        acc.write(wh.offset(WH_YTD), ytd + amount)?;
        let dist = self.district(w, d);
        let dytd = acc.read(dist.offset(D_YTD))?;
        acc.write(dist.offset(D_YTD), dytd + amount)?;
        let cust = self.customer(w, d, c);
        let bal = acc.read(cust.offset(C_BALANCE))?;
        acc.write(cust.offset(C_BALANCE), bal.wrapping_sub(amount))?;
        let cytd = acc.read(cust.offset(C_YTD_PAYMENT))?;
        acc.write(cust.offset(C_YTD_PAYMENT), cytd + amount)?;
        let cnt = acc.read(cust.offset(C_PAYMENT_CNT))?;
        acc.write(cust.offset(C_PAYMENT_CNT), cnt + 1)?;
        Ok(())
    }

    /// **Delivery** (write): deliver the oldest undelivered order of every
    /// district of warehouse `w`. Returns orders delivered.
    pub fn delivery(&self, acc: &mut dyn MemAccess, w: u32) -> Result<u32, AbortCause> {
        let mut delivered = 0;
        for d in 0..DISTRICTS_PER_WH {
            let dist = self.district(w, d);
            let next_o = acc.read(dist.offset(D_NEXT_O_ID))?;
            let next_del = acc.read(dist.offset(D_NEXT_DELIVERY))?;
            if next_del >= next_o {
                continue; // nothing undelivered
            }
            // Ring overwrite means very old orders are gone; skip forward.
            let oldest_live = next_o.saturating_sub(ORDER_RING as u64);
            let o_id = next_del.max(oldest_live);
            let order = self.order_slot(w, d, o_id);
            acc.write(order.offset(O_DELIVERED), 1)?;
            let c = acc.read(order.offset(O_C_ID))? as u32;
            let ol_cnt = acc.read(order.offset(O_OL_CNT))?;
            let mut amount = 0u64;
            for i in 0..ol_cnt.min(MAX_ORDER_LINES as u64) as u32 {
                amount += acc.read(order.offset(4 + i * 2 + 1))?;
            }
            let cust = self.customer(w, d, c);
            let bal = acc.read(cust.offset(C_BALANCE))?;
            acc.write(cust.offset(C_BALANCE), bal.wrapping_add(amount))?;
            let cnt = acc.read(cust.offset(C_DELIVERY_CNT))?;
            acc.write(cust.offset(C_DELIVERY_CNT), cnt + 1)?;
            acc.write(dist.offset(D_NEXT_DELIVERY), o_id + 1)?;
            delivered += 1;
        }
        Ok(delivered)
    }

    /// **Order-status** (read): the customer's balance plus the line count
    /// and quantity sum of their most recent order.
    pub fn order_status(
        &self,
        acc: &mut dyn MemAccess,
        w: u32,
        d: u32,
        c: u32,
    ) -> Result<(u64, u64), AbortCause> {
        let cust = self.customer(w, d, c);
        let balance = acc.read(cust.offset(C_BALANCE))?;
        let last = acc.read(cust.offset(C_LAST_O_ID))?;
        if last == 0 {
            return Ok((balance, 0));
        }
        let o_id = last - 1;
        let order = self.order_slot(w, d, o_id);
        // The ring may have overwritten the order; verify the id.
        if acc.read(order.offset(O_ID))? != o_id {
            return Ok((balance, 0));
        }
        let ol_cnt = acc.read(order.offset(O_OL_CNT))?;
        let mut qty = 0;
        for i in 0..ol_cnt.min(MAX_ORDER_LINES as u64) as u32 {
            qty += acc.read(order.offset(4 + i * 2 + 1))?;
        }
        Ok((balance, qty))
    }

    /// **Stock-level** (read): scan the district's last 20 orders and
    /// count order lines whose stock quantity is below `threshold`.
    ///
    /// This is the big read section: ~20 order records plus one stock
    /// line per order line — beyond HTM read capacity, as in the paper.
    pub fn stock_level(
        &self,
        acc: &mut dyn MemAccess,
        w: u32,
        d: u32,
        threshold: u64,
    ) -> Result<u64, AbortCause> {
        let dist = self.district(w, d);
        let next_o = acc.read(dist.offset(D_NEXT_O_ID))?;
        let from = next_o.saturating_sub(20.min(ORDER_RING as u64));
        let mut low = 0;
        for o_id in from..next_o {
            let order = self.order_slot(w, d, o_id);
            if acc.read(order.offset(O_ID))? != o_id {
                continue; // overwritten by the ring
            }
            let ol_cnt = acc.read(order.offset(O_OL_CNT))?;
            for i in 0..ol_cnt.min(MAX_ORDER_LINES as u64) as u32 {
                let item = acc.read(order.offset(4 + i * 2))? as u32;
                let q = acc.read(self.stock(w, item).offset(S_QUANTITY))?;
                if q < threshold {
                    low += 1;
                }
            }
        }
        Ok(low)
    }

    /// Sum of district next-order-ids minus deliveries — a conservation
    /// check used by tests.
    pub fn total_orders(&self, acc: &mut dyn MemAccess) -> Result<u64, AbortCause> {
        let mut total = 0;
        for w in 0..self.scale.warehouses {
            for d in 0..DISTRICTS_PER_WH {
                total += acc.read(self.district(w, d).offset(D_NEXT_O_ID))?;
            }
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime};
    use rand::SeedableRng;
    use simmem::SharedMem;
    use std::sync::Arc;

    fn setup() -> (Arc<HtmRuntime>, Tpcc) {
        let scale = TpccScale::default();
        let lines = Tpcc::lines_needed(&scale) + 1024;
        let mem = Arc::new(SharedMem::new_lines(lines as u32));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let db = Tpcc::build(&alloc, scale).unwrap();
        (rt, db)
    }

    #[test]
    fn new_order_advances_district_and_customer() {
        let (rt, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let p = NewOrderParams {
            w: 0,
            d: 3,
            c: 5,
            lines: vec![(10, 2), (20, 1)],
        };
        let total = db.new_order(&mut nt, &p).unwrap();
        assert!(total > 0);
        let (_bal, qty) = db.order_status(&mut nt, 0, 3, 5).unwrap();
        assert_eq!(qty, 3);
        assert_eq!(db.total_orders(&mut nt).unwrap(), 1);
    }

    #[test]
    fn payment_conserves_money_flow() {
        let (rt, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        db.payment(&mut nt, 1, 2, 3, 500).unwrap();
        db.payment(&mut nt, 1, 2, 3, 250).unwrap();
        let (balance, _) = db.order_status(&mut nt, 1, 2, 3).unwrap();
        assert_eq!(balance, 0u64.wrapping_sub(750));
        assert_eq!(nt.read(db.wh(1).offset(WH_YTD)), 750);
    }

    #[test]
    fn delivery_processes_undelivered_orders() {
        let (rt, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let p = NewOrderParams {
            w: 0,
            d: 0,
            c: 1,
            lines: vec![(5, 4)],
        };
        db.new_order(&mut nt, &p).unwrap();
        assert_eq!(db.delivery(&mut nt, 0).unwrap(), 1);
        // Nothing left to deliver.
        assert_eq!(db.delivery(&mut nt, 0).unwrap(), 0);
        // Customer got credited.
        let (balance, _) = db.order_status(&mut nt, 0, 0, 1).unwrap();
        assert_eq!(balance, 4);
    }

    #[test]
    fn stock_level_counts_low_stock() {
        let (rt, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let p = NewOrderParams {
            w: 0,
            d: 7,
            c: 0,
            lines: vec![(0, 3), (1, 3)],
        };
        db.new_order(&mut nt, &p).unwrap();
        // Threshold above every quantity counts all lines.
        assert_eq!(db.stock_level(&mut nt, 0, 7, 1_000_000).unwrap(), 2);
        assert_eq!(db.stock_level(&mut nt, 0, 7, 0).unwrap(), 0);
    }

    #[test]
    fn stock_level_overflows_htm_capacity_after_many_orders() {
        let (rt, db) = setup();
        let mut ctx = rt.register();
        let mut rng = SmallRng::seed_from_u64(7);
        // Fill district (0, 0)'s recent-order window.
        {
            let mut nt = ctx.non_tx();
            for _ in 0..25 {
                let mut p = db.gen_new_order(&mut rng);
                p.w = 0;
                p.d = 0;
                db.new_order(&mut nt, &p).unwrap();
            }
        }
        let mut tx = ctx.begin(htm::TxMode::Htm);
        let res = db.stock_level(&mut tx, 0, 0, 1_000_000);
        assert_eq!(
            res,
            Err(AbortCause::Capacity),
            "20 orders × ~10 lines must overflow the read budget"
        );
    }

    #[test]
    fn ring_overwrite_is_detected_by_order_status() {
        let (rt, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let mut rng = SmallRng::seed_from_u64(9);
        // Customer 2's order will be overwritten after ORDER_RING more.
        let mut p0 = db.gen_new_order(&mut rng);
        p0.w = 0;
        p0.d = 0;
        p0.c = 2;
        db.new_order(&mut nt, &p0).unwrap();
        for _ in 0..ORDER_RING {
            let mut p = db.gen_new_order(&mut rng);
            p.w = 0;
            p.d = 0;
            p.c = 3;
            db.new_order(&mut nt, &p).unwrap();
        }
        let (_bal, qty) = db.order_status(&mut nt, 0, 0, 2).unwrap();
        assert_eq!(qty, 0, "overwritten order must not be misread");
    }
}
