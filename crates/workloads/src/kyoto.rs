//! A Kyoto-Cabinet-CacheDB-like in-memory store (§4.2).
//!
//! KyotoCacheDB shards its hash database into *slots*; each slot holds a
//! bucket array whose buckets are binary search trees, protected by a
//! per-slot mutex, all under one database-wide read-write lock. Ordinary
//! record operations (`get`/`set`/`remove`) take the outer lock in *read*
//! mode plus the slot mutex; database-wide operations take it in *write*
//! mode.
//!
//! Following the paper, RW-LE elides only the **outer** lock (it knows
//! the read-write semantics); the inner mutexes remain real locks,
//! acquired through the [`MemAccess`] veneer so that:
//!
//! * in a read-side critical section they are plain compare-and-swap spin
//!   locks;
//! * inside a speculative write-side section they become buffered stores,
//!   so a concurrent reader's CAS dooms the writer through coherence —
//!   keeping slot data consistent without exposing speculation.

use htm::{AbortCause, MemAccess, ABORT_LOCK_BUSY};
use simmem::{Addr, AllocError, SimAlloc};

/// Slot-header word offsets (one line per slot header).
const H_MUTEX: u32 = 0;
const H_BUCKETS: u32 = 1;
const H_OPCOUNT: u32 = 2;

/// BST node field offsets (one line per node).
const N_KEY: u32 = 0;
const N_VAL: u32 = 1;
const N_LEFT: u32 = 2;
const N_RIGHT: u32 = 3;

/// Words per BST node.
pub const NODE_WORDS: u32 = 4;

/// Acquires a slot mutex through the access veneer.
///
/// Speculative contexts treat a busy mutex as an immediate lock-busy
/// abort (spinning inside a transaction on a word whose release would
/// conflict anyway is pointless); non-transactional contexts spin.
pub fn lock_inner(acc: &mut dyn MemAccess, mutex: Addr) -> Result<(), AbortCause> {
    if acc.is_speculative() {
        if acc.read(mutex)? != 0 {
            return Err(AbortCause::Explicit(ABORT_LOCK_BUSY));
        }
        acc.write(mutex, 1)?;
        Ok(())
    } else {
        loop {
            if acc.cas(mutex, 0, 1)?.is_ok() {
                return Ok(());
            }
            std::thread::yield_now();
        }
    }
}

/// Releases a slot mutex acquired with [`lock_inner`].
pub fn unlock_inner(acc: &mut dyn MemAccess, mutex: Addr) -> Result<(), AbortCause> {
    acc.write(mutex, 0)
}

/// The slotted cache database.
pub struct CacheDb {
    headers: Addr,
    n_slots: u32,
    buckets_per_slot: u32,
}

impl CacheDb {
    /// Builds a database with `n_slots` slots × `buckets_per_slot`
    /// buckets, each bucket an initially empty BST.
    pub fn create(
        alloc: &SimAlloc,
        n_slots: u32,
        buckets_per_slot: u32,
    ) -> Result<Self, AllocError> {
        assert!(n_slots > 0 && buckets_per_slot > 0);
        let mem = alloc.mem();
        // One full line per slot header, so slot mutexes never false-share.
        let headers = alloc.alloc(n_slots * 8)?;
        for s in 0..n_slots {
            let buckets = alloc.alloc(buckets_per_slot)?;
            for b in 0..buckets_per_slot {
                mem.store(buckets.offset(b), Addr::NULL.to_word());
            }
            mem.store(headers.offset(s * 8 + H_BUCKETS), buckets.to_word());
        }
        Ok(CacheDb {
            headers,
            n_slots,
            buckets_per_slot,
        })
    }

    /// Number of slots.
    pub fn n_slots(&self) -> u32 {
        self.n_slots
    }

    #[inline]
    fn slot_of(&self, key: u64) -> u32 {
        // Multiplicative mixing so nearby keys spread over slots.
        ((key.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % self.n_slots as u64) as u32
    }

    #[inline]
    fn slot_mutex(&self, slot: u32) -> Addr {
        self.headers.offset(slot * 8 + H_MUTEX)
    }

    fn bucket_of(&self, acc: &mut dyn MemAccess, slot: u32, key: u64) -> Result<Addr, AbortCause> {
        let buckets = Addr::from_word(acc.read(self.headers.offset(slot * 8 + H_BUCKETS))?);
        Ok(buckets.offset((key % self.buckets_per_slot as u64) as u32))
    }

    /// Allocates a detached node outside any critical section.
    pub fn make_node(&self, alloc: &SimAlloc, key: u64, value: u64) -> Result<Addr, AllocError> {
        let node = alloc.alloc(NODE_WORDS)?;
        let mem = alloc.mem();
        mem.store(node.offset(N_KEY), key);
        mem.store(node.offset(N_VAL), value);
        mem.store(node.offset(N_LEFT), Addr::NULL.to_word());
        mem.store(node.offset(N_RIGHT), Addr::NULL.to_word());
        Ok(node)
    }

    /// Record lookup. Runs under the outer lock in **read** mode; takes
    /// the slot mutex internally.
    pub fn get(&self, acc: &mut dyn MemAccess, key: u64) -> Result<Option<u64>, AbortCause> {
        let slot = self.slot_of(key);
        lock_inner(acc, self.slot_mutex(slot))?;
        // On Err the transaction has already rolled back (its buffered
        // lock acquisition evaporates with it): touching `acc` again
        // would be an access after abort, so unlock only on success.
        let value = self.get_locked(acc, slot, key)?;
        unlock_inner(acc, self.slot_mutex(slot))?;
        Ok(value)
    }

    fn get_locked(
        &self,
        acc: &mut dyn MemAccess,
        slot: u32,
        key: u64,
    ) -> Result<Option<u64>, AbortCause> {
        let bucket = self.bucket_of(acc, slot, key)?;
        let mut cur = Addr::from_word(acc.read(bucket)?);
        while !cur.is_null() {
            let k = acc.read(cur.offset(N_KEY))?;
            if k == key {
                return Ok(Some(acc.read(cur.offset(N_VAL))?));
            }
            let next = if key < k { N_LEFT } else { N_RIGHT };
            cur = Addr::from_word(acc.read(cur.offset(next))?);
        }
        Ok(None)
    }

    /// Record insert/update using the pre-built `node`. Runs under the
    /// outer lock in **read** mode (the slot mutex serializes mutators of
    /// one slot, as in KyotoCacheDB).
    ///
    /// Returns `true` if `node` was linked in, `false` if the key existed
    /// (value updated in place; `node` stays free for reuse).
    pub fn set(&self, acc: &mut dyn MemAccess, node: Addr) -> Result<bool, AbortCause> {
        let key = acc.read(node.offset(N_KEY))?;
        let slot = self.slot_of(key);
        lock_inner(acc, self.slot_mutex(slot))?;
        // See `get`: unlock only on success (abort already rolled back).
        let linked = self.set_locked(acc, slot, key, node)?;
        unlock_inner(acc, self.slot_mutex(slot))?;
        Ok(linked)
    }

    fn set_locked(
        &self,
        acc: &mut dyn MemAccess,
        slot: u32,
        key: u64,
        node: Addr,
    ) -> Result<bool, AbortCause> {
        let bucket = self.bucket_of(acc, slot, key)?;
        let mut link = bucket;
        loop {
            let cur = Addr::from_word(acc.read(link)?);
            if cur.is_null() {
                acc.write(link, node.to_word())?;
                return Ok(true);
            }
            let k = acc.read(cur.offset(N_KEY))?;
            if k == key {
                let v = acc.read(node.offset(N_VAL))?;
                acc.write(cur.offset(N_VAL), v)?;
                return Ok(false);
            }
            link = cur.offset(if key < k { N_LEFT } else { N_RIGHT });
        }
    }

    /// Record removal (BST delete). Runs under the outer lock in **read**
    /// mode. Returns the unlinked node for deferred reclamation.
    pub fn remove(&self, acc: &mut dyn MemAccess, key: u64) -> Result<Option<Addr>, AbortCause> {
        let slot = self.slot_of(key);
        lock_inner(acc, self.slot_mutex(slot))?;
        // See `get`: unlock only on success (abort already rolled back).
        let removed = self.remove_locked(acc, slot, key)?;
        unlock_inner(acc, self.slot_mutex(slot))?;
        Ok(removed)
    }

    fn remove_locked(
        &self,
        acc: &mut dyn MemAccess,
        slot: u32,
        key: u64,
    ) -> Result<Option<Addr>, AbortCause> {
        let bucket = self.bucket_of(acc, slot, key)?;
        // Find the node and the link pointing at it.
        let mut link = bucket;
        let mut cur = Addr::from_word(acc.read(link)?);
        while !cur.is_null() {
            let k = acc.read(cur.offset(N_KEY))?;
            if k == key {
                break;
            }
            link = cur.offset(if key < k { N_LEFT } else { N_RIGHT });
            cur = Addr::from_word(acc.read(link)?);
        }
        if cur.is_null() {
            return Ok(None);
        }
        let left = Addr::from_word(acc.read(cur.offset(N_LEFT))?);
        let right = Addr::from_word(acc.read(cur.offset(N_RIGHT))?);
        if left.is_null() {
            acc.write(link, right.to_word())?;
        } else if right.is_null() {
            acc.write(link, left.to_word())?;
        } else {
            // Two children: splice in the minimum of the right subtree.
            let mut min_link = cur.offset(N_RIGHT);
            let mut min = right;
            loop {
                let l = Addr::from_word(acc.read(min.offset(N_LEFT))?);
                if l.is_null() {
                    break;
                }
                min_link = min.offset(N_LEFT);
                min = l;
            }
            let min_right = acc.read(min.offset(N_RIGHT))?;
            acc.write(min_link, min_right)?;
            acc.write(min.offset(N_LEFT), left.to_word())?;
            let cur_right = acc.read(cur.offset(N_RIGHT))?;
            acc.write(min.offset(N_RIGHT), cur_right)?;
            acc.write(link, min.to_word())?;
        }
        Ok(Some(cur))
    }

    /// Database-wide maintenance operation. Runs under the outer lock in
    /// **write** mode: visits every slot, taking its mutex and bumping its
    /// operation counter (standing in for Kyoto's whole-DB operations such
    /// as `synchronize`/`iterate`).
    pub fn touch_all_slots(&self, acc: &mut dyn MemAccess) -> Result<u64, AbortCause> {
        let mut total = 0;
        for s in 0..self.n_slots {
            let mutex = self.slot_mutex(s);
            lock_inner(acc, mutex)?;
            let counter = self.headers.offset(s * 8 + H_OPCOUNT);
            let v = acc.read(counter)?;
            acc.write(counter, v + 1)?;
            total += v + 1;
            unlock_inner(acc, mutex)?;
        }
        Ok(total)
    }

    /// Counts all records (test helper).
    pub fn count(&self, acc: &mut dyn MemAccess) -> Result<u64, AbortCause> {
        let mut n = 0;
        for s in 0..self.n_slots {
            let buckets = Addr::from_word(acc.read(self.headers.offset(s * 8 + H_BUCKETS))?);
            for b in 0..self.buckets_per_slot {
                let root = Addr::from_word(acc.read(buckets.offset(b))?);
                n += self.count_tree(acc, root)?;
            }
        }
        Ok(n)
    }

    fn count_tree(&self, acc: &mut dyn MemAccess, root: Addr) -> Result<u64, AbortCause> {
        if root.is_null() {
            return Ok(0);
        }
        let l = Addr::from_word(acc.read(root.offset(N_LEFT))?);
        let r = Addr::from_word(acc.read(root.offset(N_RIGHT))?);
        Ok(1 + self.count_tree(acc, l)? + self.count_tree(acc, r)?)
    }

    /// Lines needed for `n_slots`/`buckets_per_slot` plus `items` records.
    pub fn lines_needed(n_slots: u32, buckets_per_slot: u32, items: u64) -> u64 {
        let bucket_lines = (buckets_per_slot as u64).div_ceil(8).next_power_of_two();
        n_slots as u64 * (1 + bucket_lines) + items
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime};
    use simmem::SharedMem;
    use std::sync::Arc;

    fn setup() -> (Arc<HtmRuntime>, SimAlloc, CacheDb) {
        let mem = Arc::new(SharedMem::new_lines(8192));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let db = CacheDb::create(&alloc, 4, 8).unwrap();
        (rt, alloc, db)
    }

    #[test]
    fn set_get_roundtrip() {
        let (rt, alloc, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for key in 0..50u64 {
            let node = db.make_node(&alloc, key, key * 2).unwrap();
            assert!(db.set(&mut nt, node).unwrap());
        }
        for key in 0..50u64 {
            assert_eq!(db.get(&mut nt, key).unwrap(), Some(key * 2));
        }
        assert_eq!(db.get(&mut nt, 999).unwrap(), None);
        assert_eq!(db.count(&mut nt).unwrap(), 50);
    }

    #[test]
    fn set_existing_updates() {
        let (rt, alloc, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let n1 = db.make_node(&alloc, 7, 70).unwrap();
        assert!(db.set(&mut nt, n1).unwrap());
        let n2 = db.make_node(&alloc, 7, 71).unwrap();
        assert!(!db.set(&mut nt, n2).unwrap());
        assert_eq!(db.get(&mut nt, 7).unwrap(), Some(71));
        assert_eq!(db.count(&mut nt).unwrap(), 1);
    }

    #[test]
    fn remove_all_shapes() {
        let (rt, alloc, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        // Build a tree with interesting shapes in one bucket: keys
        // congruent mod buckets fall in the same bucket/slot only if the
        // slot hash agrees, so just insert many and delete them all.
        let keys: Vec<u64> = (0..60).map(|i| (i * 37 + 11) % 101).collect();
        for &k in &keys {
            let n = db.make_node(&alloc, k, k).unwrap();
            db.set(&mut nt, n).unwrap();
        }
        let mut unique: Vec<u64> = keys.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(db.count(&mut nt).unwrap(), unique.len() as u64);
        for &k in &unique {
            assert!(db.remove(&mut nt, k).unwrap().is_some(), "missing {k}");
            assert_eq!(db.get(&mut nt, k).unwrap(), None);
        }
        assert_eq!(db.count(&mut nt).unwrap(), 0);
        assert_eq!(db.remove(&mut nt, 5).unwrap(), None);
    }

    #[test]
    fn remove_preserves_other_keys() {
        let (rt, alloc, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for k in [50u64, 30, 70, 20, 40, 60, 80] {
            let n = db.make_node(&alloc, k, k).unwrap();
            db.set(&mut nt, n).unwrap();
        }
        db.remove(&mut nt, 50).unwrap().unwrap(); // two-child case likely
        for k in [30u64, 70, 20, 40, 60, 80] {
            assert_eq!(db.get(&mut nt, k).unwrap(), Some(k), "lost key {k}");
        }
    }

    #[test]
    fn touch_all_slots_bumps_counters() {
        let (rt, _alloc, db) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        assert_eq!(db.touch_all_slots(&mut nt).unwrap(), 4); // 4 slots × 1
        assert_eq!(db.touch_all_slots(&mut nt).unwrap(), 8);
    }

    #[test]
    fn abort_inside_locked_region_is_clean() {
        // Regression test: a transaction that dies *between* lock_inner
        // and unlock_inner must propagate the abort without touching the
        // dead transaction again (the buffered lock release evaporates
        // with the rollback).
        let mem = Arc::new(SharedMem::new_lines(8192));
        let cfg = htm::HtmConfig {
            htm_read_capacity: 2, // dies during the BST search
            ..htm::HtmConfig::default()
        };
        let rt = HtmRuntime::new(Arc::clone(&mem), cfg);
        let alloc = SimAlloc::new(mem);
        let db = CacheDb::create(&alloc, 1, 1).unwrap();
        {
            let ctx = rt.register();
            let mut nt = ctx.non_tx();
            for k in 0..16u64 {
                let n = db.make_node(&alloc, k, k).unwrap();
                db.set(&mut nt, n).unwrap();
            }
        }
        let mut ctx = rt.register();
        let mut tx = ctx.begin(htm::TxMode::Htm);
        let res = db.get(&mut tx, 15);
        assert_eq!(res, Err(AbortCause::Capacity));
        drop(tx);
        // The context remains usable and the lock is not stuck.
        let mut nt = ctx.non_tx();
        assert_eq!(db.get(&mut nt, 15).unwrap(), Some(15));
    }

    #[test]
    fn speculative_busy_inner_lock_aborts() {
        let (rt, _alloc, db) = setup();
        let holder = rt.register();
        let mut w = rt.register();
        // Hold slot 0's mutex non-speculatively.
        let m = db.slot_mutex(0);
        assert!(holder.cas_nt(m, 0, 1).is_ok());
        let mut tx = w.begin(htm::TxMode::Htm);
        assert_eq!(
            lock_inner(&mut tx, m),
            Err(AbortCause::Explicit(ABORT_LOCK_BUSY))
        );
        drop(tx);
        holder.write_nt(m, 0);
    }
}
