//! Execution backends: the same KV surface over two substrates.
//!
//! [`StoreBackend`] abstracts *where* the RW-LE protocol runs:
//!
//! * [`SimBackend`] — the existing simulated-HTM pipeline
//!   (`simmem`/`htm`): every access goes through the simulated memory
//!   model, which keeps the paper-faithful abort/commit breakdowns and
//!   `sched` schedule exploration but pays the simulator on every load.
//! * [`NativeBackend`](crate::native::NativeBackend) — the same
//!   protocol over plain process memory: uninstrumented reads on the
//!   fast path, writer commit emulated as epoch-quiesced double-buffered
//!   publication (see `crate::native` and DESIGN.md §9). No abort
//!   breakdowns, no schedule exploration — raw speed.
//!
//! A backend hands out per-thread [`StoreSession`]s; each session owns
//! whatever thread-affine state its substrate needs (an HTM thread
//! context, an epoch slot) plus its [`ThreadStats`]. Sessions must be
//! created on the thread that uses them and are not transferable.

use simmem::{Addr, SharedMem, SimAlloc};
use std::sync::Arc;

use htm::{HtmConfig, HtmRuntime, ThreadCtx};
use stats::ThreadStats;

use crate::scheme::SchemeKind;
use crate::sharded::{PutOutcome, ShardedKv};

/// Which execution backend runs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Simulated HTM over `simmem` (paper-faithful breakdowns).
    Sim,
    /// Plain process memory with epoch-quiesced double buffering.
    Native,
}

impl BackendKind {
    /// Command-line name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "native" => Some(BackendKind::Native),
            _ => None,
        }
    }
}

/// The store's capacity is exhausted (simulated memory only: the native
/// backend allocates from the process heap and never reports this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFull;

/// One mutation in a batch handed to [`StoreSession::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// Insert or update `key`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Remove `key`.
    Del {
        /// Key to remove.
        key: u64,
    },
}

impl MutOp {
    /// The key the mutation targets (shard routing).
    pub fn key(&self) -> u64 {
        match *self {
            MutOp::Put { key, .. } | MutOp::Del { key } => key,
        }
    }
}

/// Per-mutation result of a batch, index-aligned with the input ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutReply {
    /// Result of a [`MutOp::Put`].
    Put(Result<PutOutcome, StoreFull>),
    /// Result of a [`MutOp::Del`]: whether the key was present.
    Del(bool),
}

/// Quiescence accounting for one [`StoreSession::apply_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Full grace periods this batch paid for itself.
    pub barriers: u64,
    /// Barriers satisfied by a grace period another writer already
    /// completed (`GraceSeq` sharing).
    pub shared: u64,
}

/// Log sequence number handed out by a [`DurableSink`].
pub type Lsn = u64;

/// The LSN of "nothing appended" (an empty batch or an all-failed
/// write-set): always already durable, [`DurableSink::wait_durable`]
/// returns immediately for it. Real LSNs start at 1.
pub const NO_LSN: Lsn = 0;

/// Where a batch's write-set goes to become durable — implemented by
/// `wal::Wal`, mocked in tests. The contract that makes replay agree
/// with acked history: **log order must equal commit order** for every
/// pair of conflicting batches. Two ways to get that ordering:
///
/// * [`DurableSink::append`] trusts the caller to hold the store-side
///   serialization already (the native backend appends while it still
///   holds every touched shard's writer lock, so conflicting batches
///   serialize their appends through those locks);
/// * [`DurableSink::append_ordered`] serializes execute + append under
///   the sink's own global order lock, for backends whose `apply_batch`
///   has no lock window spanning the whole batch (the simulated
///   backend's per-op loop).
///
/// Only the *effective* write-set is appended: a PUT that failed with
/// [`StoreFull`] had no effect and must not be replayed as if it had.
pub trait DurableSink: Send + Sync {
    /// Appends one batch's effective write-set as a single record and
    /// returns its LSN (`NO_LSN` for an empty write-set). The caller
    /// must already hold whatever store-side serialization orders this
    /// batch against conflicting ones — see the trait docs.
    fn append(&self, ops: &[MutOp]) -> Lsn;

    /// Runs `exec` (which applies a batch and pushes its effective
    /// write-set into the provided scratch buffer) and appends the
    /// result, all under the sink's global order lock, so log order
    /// equals execution order. Returns `exec`'s outcome plus the LSN.
    fn append_ordered(
        &self,
        exec: &mut dyn FnMut(&mut Vec<MutOp>) -> BatchOutcome,
    ) -> (BatchOutcome, Lsn);

    /// Blocks until everything up to `lsn` is durable under the sink's
    /// fsync policy (an interval/off policy may return immediately —
    /// the acked ⇒ durable guarantee is the per-batch policy's).
    fn wait_durable(&self, lsn: Lsn);
}

/// A store plus the substrate it executes on. Shared across worker
/// threads; each thread gets its own [`StoreSession`].
pub trait StoreBackend: Send + Sync {
    /// Creates a per-thread session. Must be called on the thread that
    /// will use it; panics when more sessions are created than the
    /// backend was sized for.
    fn session(&self) -> Box<dyn StoreSession + '_>;

    /// Backend label for stats/bench rows (`"sim"` / `"native"`).
    fn label(&self) -> &'static str;
}

/// One thread's handle onto a [`StoreBackend`]'s store.
pub trait StoreSession {
    /// Looks `key` up (uninstrumented read under RW-LE).
    fn get(&mut self, key: u64) -> Option<u64>;

    /// Inserts or updates `key`.
    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull>;

    /// Removes `key`, returning whether it was present.
    fn del(&mut self, key: u64) -> bool;

    /// Appends all present pairs with keys in `[start, start + count)`
    /// to `out`, sorted by key.
    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>);

    /// Applies a batch of mutations, filling `replies` index-aligned
    /// with `ops`, and reports how many quiescence barriers the batch
    /// actually paid.
    ///
    /// Semantics: per key, mutations apply in `ops` order, and every
    /// mutation is durable-to-readers (quiesced) when the call returns —
    /// a caller may acknowledge all of them afterwards. Backends are
    /// free to amortize: the native backend groups the batch per shard,
    /// publishes one flip per touched shard, and pays **one** barrier
    /// for the entire batch (`BatchOutcome::barriers <= 1`). The default
    /// implementation is the unamortized per-op loop, paying one barrier
    /// per mutation like individual [`StoreSession::put`]/
    /// [`StoreSession::del`] calls.
    fn apply_batch(&mut self, ops: &[MutOp], replies: &mut Vec<MutReply>) -> BatchOutcome {
        replies.clear();
        for op in ops {
            replies.push(match *op {
                MutOp::Put { key, value } => MutReply::Put(self.put(key, value)),
                MutOp::Del { key } => MutReply::Del(self.del(key)),
            });
        }
        BatchOutcome {
            barriers: ops.len() as u64,
            shared: 0,
        }
    }

    /// [`StoreSession::apply_batch`] with a redo-log stop: the batch's
    /// effective write-set is appended to `sink` ordered consistently
    /// with its commit, and the returned LSN names the record a caller
    /// must [`DurableSink::wait_durable`] on before acknowledging any of
    /// the batch's mutations (acked ⇒ durable).
    ///
    /// The default implementation serializes execute + append under the
    /// sink's order lock — sound on any backend, but it adds a global
    /// serialization point. The native backend overrides it to append
    /// while holding its shard writer locks, between the publication
    /// flips and the quiescence barrier, so the log write (and the
    /// group-commit fsync it kicks off) overlaps the grace period the
    /// batch already pays.
    fn apply_batch_durable(
        &mut self,
        ops: &[MutOp],
        replies: &mut Vec<MutReply>,
        sink: &dyn DurableSink,
    ) -> (BatchOutcome, Lsn) {
        let mut out_replies = std::mem::take(replies);
        let result = sink.append_ordered(&mut |wset| {
            let out = self.apply_batch(ops, &mut out_replies);
            for (op, rep) in ops.iter().zip(out_replies.iter()) {
                // Failed PUTs had no effect; replaying them would
                // resurrect a write the client was told was shed.
                if !matches!(rep, MutReply::Put(Err(_))) {
                    wset.push(*op);
                }
            }
            out
        });
        *replies = out_replies;
        result
    }

    /// Drains the accumulated per-thread statistics.
    fn take_stats(&mut self) -> ThreadStats;
}

/// The simulated-HTM backend: [`ShardedKv`] over `simmem`/`htm`.
pub struct SimBackend {
    rt: Arc<HtmRuntime>,
    alloc: SimAlloc,
    kv: ShardedKv,
}

impl SimBackend {
    /// Sizes simulated memory, builds and prefills the sharded store.
    /// `extra_capacity` bounds PUT allocations beyond the prefill
    /// (deleted nodes are leaked until exit — deferred reclamation).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        scheme: SchemeKind,
        shards: usize,
        buckets_per_shard: u32,
        prefill: u64,
        extra_capacity: u64,
        max_threads: usize,
        seed: u64,
    ) -> Result<SimBackend, String> {
        // One line per node plus the bucket arrays, with slack for lock
        // words and allocator rounding (same sizing rule as the bench
        // driver).
        let node_lines = prefill + extra_capacity;
        let bucket_lines = (shards as u64 * buckets_per_shard as u64).div_ceil(8);
        let lines = (node_lines + bucket_lines + 4096) * 9 / 8;
        let lines = u32::try_from(lines).map_err(|_| {
            String::from(
                "store too large for the 32-bit simulated address space; \
                 lower the prefill/capacity",
            )
        })?;
        let mem = Arc::new(SharedMem::new_lines(lines));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default().with_seed(seed));
        let alloc = SimAlloc::new(mem);
        let kv = ShardedKv::create(&alloc, scheme, shards, buckets_per_shard, max_threads)
            .map_err(|e| format!("store build: {e:?}"))?;
        kv.populate(&alloc, prefill)
            .map_err(|e| format!("prefill: {e:?}"))?;
        Ok(SimBackend { rt, alloc, kv })
    }

    /// The underlying sharded store (for direct-driver callers).
    pub fn kv(&self) -> &ShardedKv {
        &self.kv
    }
}

impl StoreBackend for SimBackend {
    fn session(&self) -> Box<dyn StoreSession + '_> {
        Box::new(SimSession {
            ctx: self.rt.register(),
            st: ThreadStats::new(),
            spare: None,
            backend: self,
        })
    }

    fn label(&self) -> &'static str {
        "sim"
    }
}

/// Per-thread session over [`SimBackend`]: owns the HTM thread context
/// and the spare-node slot the pre-allocation discipline needs.
struct SimSession<'a> {
    ctx: ThreadCtx,
    st: ThreadStats,
    spare: Option<Addr>,
    backend: &'a SimBackend,
}

impl StoreSession for SimSession<'_> {
    fn get(&mut self, key: u64) -> Option<u64> {
        self.backend.kv.get(&mut self.ctx, &mut self.st, key)
    }

    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull> {
        self.backend
            .kv
            .put(
                &mut self.ctx,
                &mut self.st,
                &self.backend.alloc,
                &mut self.spare,
                key,
                value,
            )
            .map_err(|_| StoreFull)
    }

    fn del(&mut self, key: u64) -> bool {
        self.backend.kv.del(&mut self.ctx, &mut self.st, key)
    }

    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>) {
        self.backend
            .kv
            .scan(&mut self.ctx, &mut self.st, start, count, out);
    }

    fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_backend_threads;
    use crate::native::NativeBackend;
    use stats::{CommitKind, StatsSummary};

    fn sim() -> SimBackend {
        SimBackend::create(SchemeKind::RwLeOpt, 4, 16, 200, 4000, 5, 1).unwrap()
    }

    fn native() -> NativeBackend {
        NativeBackend::create(4, 5, 200)
    }

    fn roundtrip(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        // Prefilled keys read back as key = value.
        assert_eq!(s.get(7), Some(7));
        assert_eq!(s.get(5000), None);
        assert_eq!(s.put(5000, 42), Ok(PutOutcome::Inserted));
        assert_eq!(s.get(5000), Some(42));
        assert_eq!(s.put(5000, 43), Ok(PutOutcome::Updated));
        assert_eq!(s.get(5000), Some(43));
        assert!(s.del(5000));
        assert!(!s.del(5000));
        assert_eq!(s.get(5000), None);
        let mut out = Vec::new();
        s.scan(10, 5, &mut out);
        assert_eq!(out, (10..15).map(|k| (k, k)).collect::<Vec<_>>());
        assert!(s.take_stats().ops > 0);
    }

    #[test]
    fn sim_backend_roundtrips() {
        roundtrip(&sim());
    }

    #[test]
    fn native_backend_roundtrips() {
        roundtrip(&native());
    }

    #[test]
    fn sgl_backend_roundtrips() {
        roundtrip(&crate::native::SglBackend::create(200));
    }

    /// `apply_batch` must agree with sequential put/del semantics on
    /// every backend, amortized or not.
    fn batched_mutations(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        let ops = [
            MutOp::Put {
                key: 1000,
                value: 5,
            },
            MutOp::Del { key: 1 },
            MutOp::Put {
                key: 1000,
                value: 6,
            },
            MutOp::Del { key: 4000 },
        ];
        let mut replies = Vec::new();
        let out = s.apply_batch(&ops, &mut replies);
        assert_eq!(
            replies,
            vec![
                MutReply::Put(Ok(PutOutcome::Inserted)),
                MutReply::Del(true),
                MutReply::Put(Ok(PutOutcome::Updated)),
                MutReply::Del(false),
            ]
        );
        assert!(out.barriers + out.shared >= 1);
        assert_eq!(s.get(1000), Some(6));
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn sim_backend_batches() {
        batched_mutations(&sim());
    }

    #[test]
    fn native_backend_batches() {
        batched_mutations(&native());
    }

    #[test]
    fn sgl_backend_batches() {
        batched_mutations(&crate::native::SglBackend::create(200));
    }

    /// The torn-read invariant of the sharded-store test, parameterized
    /// over the backend: values are always `key` or `key + 1`, never a
    /// mix of bytes from both.
    fn mixed_ops_torn_free(backend: &dyn StoreBackend) -> StatsSummary {
        let (_wall, stats) = run_backend_threads(backend, 4, |t, sess| {
            for i in 0..200u64 {
                let key = (t as u64 * 131 + i * 7) % 400;
                match i % 4 {
                    0 => {
                        sess.put(key, key + 1).unwrap();
                    }
                    1 => {
                        if let Some(v) = sess.get(key) {
                            assert!(v == key || v == key + 1, "torn value {v} for {key}");
                        }
                    }
                    2 => {
                        sess.del(key);
                    }
                    _ => {
                        let mut out = Vec::new();
                        sess.scan(key, 8, &mut out);
                        for (k, v) in out {
                            assert!(v == k || v == k + 1, "torn scan {v} for {k}");
                        }
                    }
                }
            }
        });
        StatsSummary::from_threads(&stats)
    }

    #[test]
    fn sim_backend_mixed_ops_torn_free() {
        let s = mixed_ops_torn_free(&sim());
        // Reads are uninstrumented under RW-LE.
        assert!(s.commits(CommitKind::Uninstrumented) > 0);
    }

    #[test]
    fn native_backend_mixed_ops_torn_free() {
        let s = mixed_ops_torn_free(&native());
        assert!(s.commits(CommitKind::Uninstrumented) > 0);
        // Writer commits are ROT-emulated publications.
        assert!(s.commits(CommitKind::Rot) > 0);
        // The native path has no speculation to abort.
        assert_eq!(s.total_aborts(), 0);
    }

    #[test]
    fn backend_kind_parse_roundtrip() {
        for k in [BackendKind::Sim, BackendKind::Native] {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }

    /// In-memory [`DurableSink`] recording every appended write-set.
    #[derive(Default)]
    struct MockSink {
        records: std::sync::Mutex<Vec<Vec<MutOp>>>,
    }

    impl DurableSink for MockSink {
        fn append(&self, ops: &[MutOp]) -> Lsn {
            let mut g = self.records.lock().unwrap();
            g.push(ops.to_vec());
            g.len() as Lsn
        }

        fn append_ordered(
            &self,
            exec: &mut dyn FnMut(&mut Vec<MutOp>) -> BatchOutcome,
        ) -> (BatchOutcome, Lsn) {
            let mut wset = Vec::new();
            let out = exec(&mut wset);
            let lsn = if wset.is_empty() {
                NO_LSN
            } else {
                self.append(&wset)
            };
            (out, lsn)
        }

        fn wait_durable(&self, _lsn: Lsn) {}
    }

    /// An empty batch is a no-op on every backend and every path:
    /// stale reply contents are cleared, no barrier is paid, and the
    /// durable path appends nothing (`NO_LSN`).
    fn empty_batch(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        let mut replies = vec![MutReply::Del(true)]; // stale, must clear
        let out = s.apply_batch(&[], &mut replies);
        assert!(replies.is_empty());
        assert_eq!(out, BatchOutcome::default());
        let sink = MockSink::default();
        let (out, lsn) = s.apply_batch_durable(&[], &mut replies, &sink);
        assert_eq!(out, BatchOutcome::default());
        assert_eq!(lsn, NO_LSN);
        assert!(replies.is_empty());
        assert!(sink.records.lock().unwrap().is_empty());
    }

    #[test]
    fn sim_backend_empty_batch() {
        empty_batch(&sim());
    }

    #[test]
    fn native_backend_empty_batch() {
        empty_batch(&native());
    }

    #[test]
    fn sgl_backend_empty_batch() {
        empty_batch(&crate::native::SglBackend::create(200));
    }

    /// Replies are index-aligned with ops for every batch shape —
    /// including duplicate keys and batches larger than the shard count.
    fn replies_align(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        for n in [1usize, 2, 7, 33] {
            let ops: Vec<MutOp> = (0..n)
                .map(|i| {
                    if i % 3 == 2 {
                        MutOp::Del {
                            key: (i / 3) as u64,
                        }
                    } else {
                        MutOp::Put {
                            key: 10_000 + (i % 5) as u64,
                            value: i as u64,
                        }
                    }
                })
                .collect();
            let mut replies = Vec::new();
            s.apply_batch(&ops, &mut replies);
            assert_eq!(replies.len(), ops.len(), "batch of {n}");
        }
    }

    #[test]
    fn sim_backend_replies_align() {
        replies_align(&sim());
    }

    #[test]
    fn native_backend_replies_align() {
        replies_align(&native());
    }

    /// A PUT that hits `StoreFull` mid-batch sheds only itself: the
    /// batch keeps going, replies stay index-aligned, and the durable
    /// filter drops the failed PUT from the logged write-set while
    /// keeping the ops after it.
    #[test]
    fn sim_store_full_mid_batch_sheds_only_the_failed_put() {
        // Tiny arena so fresh-key PUTs exhaust it quickly (the allocator
        // adds fixed slack, so shedding starts after some number of
        // batches rather than immediately).
        let backend = SimBackend::create(SchemeKind::RwLeOpt, 1, 16, 10, 0, 1, 1).unwrap();
        let sink = MockSink::default();
        let mut s = backend.session();
        let mut replies = Vec::new();
        let mut fresh = 1_000_000u64;
        for _ in 0..10_000 {
            let a = fresh;
            let b = fresh + 1;
            fresh += 2;
            let ops = [
                MutOp::Put { key: a, value: 1 },
                MutOp::Put { key: b, value: 2 },
                MutOp::Del { key: a },
            ];
            let (_out, lsn) = s.apply_batch_durable(&ops, &mut replies, &sink);
            assert_eq!(replies.len(), ops.len());
            let failed: Vec<usize> = replies
                .iter()
                .enumerate()
                .filter(|(_, r)| matches!(r, MutReply::Put(Err(_))))
                .map(|(i, _)| i)
                .collect();
            if failed.is_empty() {
                assert_ne!(lsn, NO_LSN, "effective writes must be logged");
                continue;
            }
            // The batch survived the failure: the trailing DEL was
            // still executed and answered.
            assert!(matches!(replies[2], MutReply::Del(_)));
            // The logged record holds exactly the effective write-set.
            let records = sink.records.lock().unwrap();
            let logged = records.last().expect("record for the shedding batch");
            assert_eq!(logged.len(), ops.len() - failed.len());
            for (i, op) in ops.iter().enumerate() {
                assert_eq!(
                    logged.contains(op),
                    !failed.contains(&i),
                    "op {i} in batch {ops:?} vs logged {logged:?}"
                );
            }
            return;
        }
        panic!("arena never filled — no StoreFull to exercise");
    }
}
