//! Execution backends: the same KV surface over two substrates.
//!
//! [`StoreBackend`] abstracts *where* the RW-LE protocol runs:
//!
//! * [`SimBackend`] — the existing simulated-HTM pipeline
//!   (`simmem`/`htm`): every access goes through the simulated memory
//!   model, which keeps the paper-faithful abort/commit breakdowns and
//!   `sched` schedule exploration but pays the simulator on every load.
//! * [`NativeBackend`](crate::native::NativeBackend) — the same
//!   protocol over plain process memory: uninstrumented reads on the
//!   fast path, writer commit emulated as epoch-quiesced double-buffered
//!   publication (see `crate::native` and DESIGN.md §9). No abort
//!   breakdowns, no schedule exploration — raw speed.
//!
//! A backend hands out per-thread [`StoreSession`]s; each session owns
//! whatever thread-affine state its substrate needs (an HTM thread
//! context, an epoch slot) plus its [`ThreadStats`]. Sessions must be
//! created on the thread that uses them and are not transferable.

use simmem::{Addr, SharedMem, SimAlloc};
use std::sync::Arc;

use htm::{HtmConfig, HtmRuntime, ThreadCtx};
use stats::ThreadStats;

use crate::scheme::SchemeKind;
use crate::sharded::{PutOutcome, ShardedKv};

/// Which execution backend runs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Simulated HTM over `simmem` (paper-faithful breakdowns).
    Sim,
    /// Plain process memory with epoch-quiesced double buffering.
    Native,
}

impl BackendKind {
    /// Command-line name.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "sim" => Some(BackendKind::Sim),
            "native" => Some(BackendKind::Native),
            _ => None,
        }
    }
}

/// The store's capacity is exhausted (simulated memory only: the native
/// backend allocates from the process heap and never reports this).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFull;

/// One mutation in a batch handed to [`StoreSession::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutOp {
    /// Insert or update `key`.
    Put {
        /// Key to write.
        key: u64,
        /// Value to store.
        value: u64,
    },
    /// Remove `key`.
    Del {
        /// Key to remove.
        key: u64,
    },
}

impl MutOp {
    /// The key the mutation targets (shard routing).
    pub fn key(&self) -> u64 {
        match *self {
            MutOp::Put { key, .. } | MutOp::Del { key } => key,
        }
    }
}

/// Per-mutation result of a batch, index-aligned with the input ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutReply {
    /// Result of a [`MutOp::Put`].
    Put(Result<PutOutcome, StoreFull>),
    /// Result of a [`MutOp::Del`]: whether the key was present.
    Del(bool),
}

/// Quiescence accounting for one [`StoreSession::apply_batch`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Full grace periods this batch paid for itself.
    pub barriers: u64,
    /// Barriers satisfied by a grace period another writer already
    /// completed (`GraceSeq` sharing).
    pub shared: u64,
}

/// A store plus the substrate it executes on. Shared across worker
/// threads; each thread gets its own [`StoreSession`].
pub trait StoreBackend: Send + Sync {
    /// Creates a per-thread session. Must be called on the thread that
    /// will use it; panics when more sessions are created than the
    /// backend was sized for.
    fn session(&self) -> Box<dyn StoreSession + '_>;

    /// Backend label for stats/bench rows (`"sim"` / `"native"`).
    fn label(&self) -> &'static str;
}

/// One thread's handle onto a [`StoreBackend`]'s store.
pub trait StoreSession {
    /// Looks `key` up (uninstrumented read under RW-LE).
    fn get(&mut self, key: u64) -> Option<u64>;

    /// Inserts or updates `key`.
    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull>;

    /// Removes `key`, returning whether it was present.
    fn del(&mut self, key: u64) -> bool;

    /// Appends all present pairs with keys in `[start, start + count)`
    /// to `out`, sorted by key.
    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>);

    /// Applies a batch of mutations, filling `replies` index-aligned
    /// with `ops`, and reports how many quiescence barriers the batch
    /// actually paid.
    ///
    /// Semantics: per key, mutations apply in `ops` order, and every
    /// mutation is durable-to-readers (quiesced) when the call returns —
    /// a caller may acknowledge all of them afterwards. Backends are
    /// free to amortize: the native backend groups the batch per shard,
    /// publishes one flip per touched shard, and pays **one** barrier
    /// for the entire batch (`BatchOutcome::barriers <= 1`). The default
    /// implementation is the unamortized per-op loop, paying one barrier
    /// per mutation like individual [`StoreSession::put`]/
    /// [`StoreSession::del`] calls.
    fn apply_batch(&mut self, ops: &[MutOp], replies: &mut Vec<MutReply>) -> BatchOutcome {
        replies.clear();
        for op in ops {
            replies.push(match *op {
                MutOp::Put { key, value } => MutReply::Put(self.put(key, value)),
                MutOp::Del { key } => MutReply::Del(self.del(key)),
            });
        }
        BatchOutcome {
            barriers: ops.len() as u64,
            shared: 0,
        }
    }

    /// Drains the accumulated per-thread statistics.
    fn take_stats(&mut self) -> ThreadStats;
}

/// The simulated-HTM backend: [`ShardedKv`] over `simmem`/`htm`.
pub struct SimBackend {
    rt: Arc<HtmRuntime>,
    alloc: SimAlloc,
    kv: ShardedKv,
}

impl SimBackend {
    /// Sizes simulated memory, builds and prefills the sharded store.
    /// `extra_capacity` bounds PUT allocations beyond the prefill
    /// (deleted nodes are leaked until exit — deferred reclamation).
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        scheme: SchemeKind,
        shards: usize,
        buckets_per_shard: u32,
        prefill: u64,
        extra_capacity: u64,
        max_threads: usize,
        seed: u64,
    ) -> Result<SimBackend, String> {
        // One line per node plus the bucket arrays, with slack for lock
        // words and allocator rounding (same sizing rule as the bench
        // driver).
        let node_lines = prefill + extra_capacity;
        let bucket_lines = (shards as u64 * buckets_per_shard as u64).div_ceil(8);
        let lines = (node_lines + bucket_lines + 4096) * 9 / 8;
        let lines = u32::try_from(lines).map_err(|_| {
            String::from(
                "store too large for the 32-bit simulated address space; \
                 lower the prefill/capacity",
            )
        })?;
        let mem = Arc::new(SharedMem::new_lines(lines));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default().with_seed(seed));
        let alloc = SimAlloc::new(mem);
        let kv = ShardedKv::create(&alloc, scheme, shards, buckets_per_shard, max_threads)
            .map_err(|e| format!("store build: {e:?}"))?;
        kv.populate(&alloc, prefill)
            .map_err(|e| format!("prefill: {e:?}"))?;
        Ok(SimBackend { rt, alloc, kv })
    }

    /// The underlying sharded store (for direct-driver callers).
    pub fn kv(&self) -> &ShardedKv {
        &self.kv
    }
}

impl StoreBackend for SimBackend {
    fn session(&self) -> Box<dyn StoreSession + '_> {
        Box::new(SimSession {
            ctx: self.rt.register(),
            st: ThreadStats::new(),
            spare: None,
            backend: self,
        })
    }

    fn label(&self) -> &'static str {
        "sim"
    }
}

/// Per-thread session over [`SimBackend`]: owns the HTM thread context
/// and the spare-node slot the pre-allocation discipline needs.
struct SimSession<'a> {
    ctx: ThreadCtx,
    st: ThreadStats,
    spare: Option<Addr>,
    backend: &'a SimBackend,
}

impl StoreSession for SimSession<'_> {
    fn get(&mut self, key: u64) -> Option<u64> {
        self.backend.kv.get(&mut self.ctx, &mut self.st, key)
    }

    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull> {
        self.backend
            .kv
            .put(
                &mut self.ctx,
                &mut self.st,
                &self.backend.alloc,
                &mut self.spare,
                key,
                value,
            )
            .map_err(|_| StoreFull)
    }

    fn del(&mut self, key: u64) -> bool {
        self.backend.kv.del(&mut self.ctx, &mut self.st, key)
    }

    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>) {
        self.backend
            .kv
            .scan(&mut self.ctx, &mut self.st, start, count, out);
    }

    fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::run_backend_threads;
    use crate::native::NativeBackend;
    use stats::{CommitKind, StatsSummary};

    fn sim() -> SimBackend {
        SimBackend::create(SchemeKind::RwLeOpt, 4, 16, 200, 4000, 5, 1).unwrap()
    }

    fn native() -> NativeBackend {
        NativeBackend::create(4, 5, 200)
    }

    fn roundtrip(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        // Prefilled keys read back as key = value.
        assert_eq!(s.get(7), Some(7));
        assert_eq!(s.get(5000), None);
        assert_eq!(s.put(5000, 42), Ok(PutOutcome::Inserted));
        assert_eq!(s.get(5000), Some(42));
        assert_eq!(s.put(5000, 43), Ok(PutOutcome::Updated));
        assert_eq!(s.get(5000), Some(43));
        assert!(s.del(5000));
        assert!(!s.del(5000));
        assert_eq!(s.get(5000), None);
        let mut out = Vec::new();
        s.scan(10, 5, &mut out);
        assert_eq!(out, (10..15).map(|k| (k, k)).collect::<Vec<_>>());
        assert!(s.take_stats().ops > 0);
    }

    #[test]
    fn sim_backend_roundtrips() {
        roundtrip(&sim());
    }

    #[test]
    fn native_backend_roundtrips() {
        roundtrip(&native());
    }

    #[test]
    fn sgl_backend_roundtrips() {
        roundtrip(&crate::native::SglBackend::create(200));
    }

    /// `apply_batch` must agree with sequential put/del semantics on
    /// every backend, amortized or not.
    fn batched_mutations(backend: &dyn StoreBackend) {
        let mut s = backend.session();
        let ops = [
            MutOp::Put {
                key: 1000,
                value: 5,
            },
            MutOp::Del { key: 1 },
            MutOp::Put {
                key: 1000,
                value: 6,
            },
            MutOp::Del { key: 4000 },
        ];
        let mut replies = Vec::new();
        let out = s.apply_batch(&ops, &mut replies);
        assert_eq!(
            replies,
            vec![
                MutReply::Put(Ok(PutOutcome::Inserted)),
                MutReply::Del(true),
                MutReply::Put(Ok(PutOutcome::Updated)),
                MutReply::Del(false),
            ]
        );
        assert!(out.barriers + out.shared >= 1);
        assert_eq!(s.get(1000), Some(6));
        assert_eq!(s.get(1), None);
    }

    #[test]
    fn sim_backend_batches() {
        batched_mutations(&sim());
    }

    #[test]
    fn native_backend_batches() {
        batched_mutations(&native());
    }

    #[test]
    fn sgl_backend_batches() {
        batched_mutations(&crate::native::SglBackend::create(200));
    }

    /// The torn-read invariant of the sharded-store test, parameterized
    /// over the backend: values are always `key` or `key + 1`, never a
    /// mix of bytes from both.
    fn mixed_ops_torn_free(backend: &dyn StoreBackend) -> StatsSummary {
        let (_wall, stats) = run_backend_threads(backend, 4, |t, sess| {
            for i in 0..200u64 {
                let key = (t as u64 * 131 + i * 7) % 400;
                match i % 4 {
                    0 => {
                        sess.put(key, key + 1).unwrap();
                    }
                    1 => {
                        if let Some(v) = sess.get(key) {
                            assert!(v == key || v == key + 1, "torn value {v} for {key}");
                        }
                    }
                    2 => {
                        sess.del(key);
                    }
                    _ => {
                        let mut out = Vec::new();
                        sess.scan(key, 8, &mut out);
                        for (k, v) in out {
                            assert!(v == k || v == k + 1, "torn scan {v} for {k}");
                        }
                    }
                }
            }
        });
        StatsSummary::from_threads(&stats)
    }

    #[test]
    fn sim_backend_mixed_ops_torn_free() {
        let s = mixed_ops_torn_free(&sim());
        // Reads are uninstrumented under RW-LE.
        assert!(s.commits(CommitKind::Uninstrumented) > 0);
    }

    #[test]
    fn native_backend_mixed_ops_torn_free() {
        let s = mixed_ops_torn_free(&native());
        assert!(s.commits(CommitKind::Uninstrumented) > 0);
        // Writer commits are ROT-emulated publications.
        assert!(s.commits(CommitKind::Rot) > 0);
        // The native path has no speculation to abort.
        assert_eq!(s.total_aborts(), 0);
    }

    #[test]
    fn backend_kind_parse_roundtrip() {
        for k in [BackendKind::Sim, BackendKind::Native] {
            assert_eq!(BackendKind::parse(k.name()), Some(k));
        }
        assert_eq!(BackendKind::parse("bogus"), None);
    }
}
