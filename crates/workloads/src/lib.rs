//! Evaluation workloads over simulated memory.
//!
//! The RW-LE paper evaluates four applications; this crate implements all
//! of them against the `simmem`/`htm` substrate, parameterized by the
//! synchronization [`Scheme`] so every baseline drives identical code:
//!
//! * [`hashmap`] — the synthetic hashmap of the §4.1 sensitivity study
//!   (capacity × contention × update-ratio grid).
//! * [`stmbench7`] — a scaled STMBench7-like CAD object graph with large,
//!   heterogeneous critical sections.
//! * [`kyoto`] — a Kyoto-Cabinet-CacheDB-like slotted store: an outer
//!   read-write lock (elided) over per-slot mutexes (kept), driven by a
//!   `wicked`-style random mix.
//! * [`tpcc`] — a TPC-C port on an in-memory store; read-only transactions
//!   become read critical sections, updates become write sections.
//!
//! [`driver`] contains the multi-threaded measurement harness shared by
//! the figure-regeneration binaries in the `bench` crate.
//!
//! [`backend`] abstracts the execution substrate: the simulated-HTM
//! pipeline above, or [`native`] — the same RW-LE protocol over plain
//! process memory with epoch-quiesced double-buffered writer commits
//! (DESIGN.md §9).

#![warn(missing_docs)]

pub mod backend;
pub mod driver;
pub mod hashmap;
pub mod kyoto;
pub mod native;
pub mod scheme;
pub mod sharded;
pub mod sortedlist;
pub mod stmbench7;
pub mod tpcc;

pub use backend::{BackendKind, StoreBackend, StoreSession};
pub use scheme::{Scheme, SchemeKind};
