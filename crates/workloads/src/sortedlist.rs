//! A sorted linked-list set over simulated memory, driven through
//! [`MemAccess`] — the lock-elision counterpart of the RLU list, used to
//! compare the two paradigms on identical node layouts.

use htm::{AbortCause, MemAccess};
use simmem::{Addr, AllocError, SimAlloc};

/// Node field offsets.
const F_KEY: u32 = 0;
const F_NEXT: u32 = 1;
/// Words per node.
pub const NODE_WORDS: u32 = 2;

/// A sorted singly linked set of `u64` keys ≥ 1 (key 0 is the sentinel).
pub struct SortedList {
    head: Addr,
}

impl SortedList {
    /// Creates an empty set.
    pub fn new(alloc: &SimAlloc) -> Result<Self, AllocError> {
        let head = alloc.alloc(NODE_WORDS)?;
        let mem = alloc.mem();
        mem.store(head.offset(F_KEY), 0);
        mem.store(head.offset(F_NEXT), Addr::NULL.to_word());
        Ok(SortedList { head })
    }

    /// Allocates a detached node (outside critical sections).
    pub fn make_node(&self, alloc: &SimAlloc, key: u64) -> Result<Addr, AllocError> {
        assert!(key >= 1, "key 0 is the sentinel");
        let node = alloc.alloc(NODE_WORDS)?;
        let mem = alloc.mem();
        mem.store(node.offset(F_KEY), key);
        mem.store(node.offset(F_NEXT), Addr::NULL.to_word());
        Ok(node)
    }

    /// Walks to the first node with key ≥ `key`; returns `(prev, cur)`.
    fn find(&self, acc: &mut dyn MemAccess, key: u64) -> Result<(Addr, Option<Addr>), AbortCause> {
        let mut prev = self.head;
        let mut cur = Addr::from_word(acc.read(prev.offset(F_NEXT))?);
        while !cur.is_null() {
            let k = acc.read(cur.offset(F_KEY))?;
            if k >= key {
                return Ok((prev, Some(cur)));
            }
            prev = cur;
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok((prev, None))
    }

    /// Membership test.
    pub fn contains(&self, acc: &mut dyn MemAccess, key: u64) -> Result<bool, AbortCause> {
        let (_prev, cur) = self.find(acc, key)?;
        Ok(match cur {
            Some(node) => acc.read(node.offset(F_KEY))? == key,
            None => false,
        })
    }

    /// Links the pre-built `node` in; returns `false` (node unused) if
    /// its key is already present.
    pub fn add(&self, acc: &mut dyn MemAccess, node: Addr) -> Result<bool, AbortCause> {
        let key = acc.read(node.offset(F_KEY))?;
        let (prev, cur) = self.find(acc, key)?;
        if let Some(c) = cur {
            if acc.read(c.offset(F_KEY))? == key {
                return Ok(false);
            }
        }
        let next_word = match cur {
            Some(c) => c.to_word(),
            None => Addr::NULL.to_word(),
        };
        acc.write(node.offset(F_NEXT), next_word)?;
        acc.write(prev.offset(F_NEXT), node.to_word())?;
        Ok(true)
    }

    /// Unlinks `key`; returns the node for deferred reclamation.
    pub fn remove(&self, acc: &mut dyn MemAccess, key: u64) -> Result<Option<Addr>, AbortCause> {
        let (prev, cur) = self.find(acc, key)?;
        let Some(node) = cur else {
            return Ok(None);
        };
        if acc.read(node.offset(F_KEY))? != key {
            return Ok(None);
        }
        let next = acc.read(node.offset(F_NEXT))?;
        acc.write(prev.offset(F_NEXT), next)?;
        Ok(Some(node))
    }

    /// Collects all keys in order (test helper).
    pub fn keys(&self, acc: &mut dyn MemAccess) -> Result<Vec<u64>, AbortCause> {
        let mut out = Vec::new();
        let mut cur = Addr::from_word(acc.read(self.head.offset(F_NEXT))?);
        while !cur.is_null() {
            out.push(acc.read(cur.offset(F_KEY))?);
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime};
    use simmem::SharedMem;
    use std::sync::Arc;

    fn setup() -> (Arc<HtmRuntime>, SimAlloc, SortedList) {
        let mem = Arc::new(SharedMem::new_lines(4096));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let list = SortedList::new(&alloc).unwrap();
        (rt, alloc, list)
    }

    #[test]
    fn sorted_semantics() {
        let (rt, alloc, list) = setup();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for k in [5u64, 1, 9, 3, 7] {
            let n = list.make_node(&alloc, k).unwrap();
            assert!(list.add(&mut nt, n).unwrap());
        }
        let dup = list.make_node(&alloc, 5).unwrap();
        assert!(!list.add(&mut nt, dup).unwrap());
        assert_eq!(list.keys(&mut nt).unwrap(), vec![1, 3, 5, 7, 9]);
        assert!(list.contains(&mut nt, 7).unwrap());
        assert!(!list.contains(&mut nt, 4).unwrap());
        assert!(list.remove(&mut nt, 5).unwrap().is_some());
        assert!(list.remove(&mut nt, 5).unwrap().is_none());
        assert_eq!(list.keys(&mut nt).unwrap(), vec![1, 3, 7, 9]);
    }

    #[test]
    fn transactional_add_is_atomic() {
        let (rt, alloc, list) = setup();
        let mut ctx = rt.register();
        let n = list.make_node(&alloc, 4).unwrap();
        let mut tx = ctx.begin(htm::TxMode::Htm);
        list.add(&mut tx, n).unwrap();
        drop(tx); // abort
        let mut nt = ctx.non_tx();
        assert!(!list.contains(&mut nt, 4).unwrap());
    }
}
