//! The sensitivity-study hashmap (§4.1): `l` buckets, each a singly
//! linked list, synchronized by one elided read-write lock.
//!
//! Layout in simulated memory:
//!
//! * the bucket array — `l` words, each the head pointer of a list
//!   (encoded with [`Addr::to_word`]; null = empty);
//! * nodes — one cache line each, words `[key, value, next]`.
//!
//! One node per line means a lookup traversing `k` nodes puts `k` lines in
//! an HTM read set, which is exactly how the paper provokes capacity
//! aborts with 200-element buckets and avoids them with 50-element ones.

use htm::{AbortCause, MemAccess};
use simmem::{Addr, AllocError, SharedMem, SimAlloc};

/// Node field offsets.
const KEY: u32 = 0;
const VAL: u32 = 1;
const NEXT: u32 = 2;
/// Words allocated per node (rounds to one line).
pub const NODE_WORDS: u32 = 3;

/// A hashmap of singly linked buckets in simulated memory.
pub struct SimHashMap {
    buckets: Addr,
    num_buckets: u32,
}

impl SimHashMap {
    /// Creates a map with `num_buckets` empty buckets.
    pub fn create(alloc: &SimAlloc, num_buckets: u32) -> Result<Self, AllocError> {
        assert!(num_buckets > 0, "need at least one bucket");
        let buckets = alloc.alloc(num_buckets)?;
        // Bucket array must read as null, not zero (zero is a valid Addr).
        let mem = alloc_mem(alloc);
        for i in 0..num_buckets {
            mem.store(buckets.offset(i), Addr::NULL.to_word());
        }
        Ok(SimHashMap {
            buckets,
            num_buckets,
        })
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> u32 {
        self.num_buckets
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> Addr {
        self.buckets.offset((key % self.num_buckets as u64) as u32)
    }

    /// Address of the bucket head `key` hashes to — for wrappers (the
    /// sharded store) that pre-load nodes with direct memory writes.
    #[inline]
    pub fn bucket_addr(&self, key: u64) -> Addr {
        self.bucket_of(key)
    }

    /// Allocates and initializes a detached node (outside any critical
    /// section — the standard pre-allocation pattern under lock elision,
    /// since allocator metadata must not join the transaction footprint).
    pub fn make_node(&self, alloc: &SimAlloc, key: u64, value: u64) -> Result<Addr, AllocError> {
        let node = alloc.alloc(NODE_WORDS)?;
        let mem = alloc_mem(alloc);
        mem.store(node.offset(KEY), key);
        mem.store(node.offset(VAL), value);
        mem.store(node.offset(NEXT), Addr::NULL.to_word());
        Ok(node)
    }

    /// Looks `key` up, returning its value if present.
    pub fn lookup(&self, acc: &mut dyn MemAccess, key: u64) -> Result<Option<u64>, AbortCause> {
        let mut cur = Addr::from_word(acc.read(self.bucket_of(key))?);
        while !cur.is_null() {
            if acc.read(cur.offset(KEY))? == key {
                return Ok(Some(acc.read(cur.offset(VAL))?));
            }
            cur = Addr::from_word(acc.read(cur.offset(NEXT))?);
        }
        Ok(None)
    }

    /// Inserts the pre-built `node` at the bucket head, unless its key is
    /// already present (then the existing value is updated in place).
    ///
    /// Returns `true` if `node` was linked in (consumed), `false` if the
    /// key existed and `node` remains free for reuse by the caller.
    pub fn insert(&self, acc: &mut dyn MemAccess, node: Addr) -> Result<bool, AbortCause> {
        let key = acc.read(node.offset(KEY))?;
        let bucket = self.bucket_of(key);
        let head = acc.read(bucket)?;
        let mut cur = Addr::from_word(head);
        while !cur.is_null() {
            if acc.read(cur.offset(KEY))? == key {
                let new_val = acc.read(node.offset(VAL))?;
                acc.write(cur.offset(VAL), new_val)?;
                return Ok(false);
            }
            cur = Addr::from_word(acc.read(cur.offset(NEXT))?);
        }
        acc.write(node.offset(NEXT), head)?;
        acc.write(bucket, node.to_word())?;
        Ok(true)
    }

    /// Unlinks `key`, returning the removed node for *deferred*
    /// reclamation (concurrent uninstrumented readers may still traverse
    /// it; free only after a grace period — or after the run, as the
    /// benchmarks do).
    pub fn remove(&self, acc: &mut dyn MemAccess, key: u64) -> Result<Option<Addr>, AbortCause> {
        let bucket = self.bucket_of(key);
        let mut prev: Option<Addr> = None;
        let mut cur = Addr::from_word(acc.read(bucket)?);
        while !cur.is_null() {
            let next = acc.read(cur.offset(NEXT))?;
            if acc.read(cur.offset(KEY))? == key {
                match prev {
                    Some(p) => acc.write(p.offset(NEXT), next)?,
                    None => acc.write(bucket, next)?,
                }
                return Ok(Some(cur));
            }
            prev = Some(cur);
            cur = Addr::from_word(next);
        }
        Ok(None)
    }

    /// Counts every element (test helper; large footprint).
    pub fn len(&self, acc: &mut dyn MemAccess) -> Result<u64, AbortCause> {
        let mut n = 0;
        for b in 0..self.num_buckets {
            let mut cur = Addr::from_word(acc.read(self.buckets.offset(b))?);
            while !cur.is_null() {
                n += 1;
                cur = Addr::from_word(acc.read(cur.offset(NEXT))?);
            }
        }
        Ok(n)
    }

    /// Returns `true` if the map holds no elements (test helper).
    pub fn is_empty(&self, acc: &mut dyn MemAccess) -> Result<bool, AbortCause> {
        Ok(self.len(acc)? == 0)
    }

    /// Populates the map single-threadedly with keys `0..n` (value =
    /// `key`), bypassing the HTM layer (initialization happens before any
    /// concurrency).
    pub fn populate(&self, alloc: &SimAlloc, n: u64) -> Result<(), AllocError> {
        let mem = alloc_mem(alloc);
        for key in 0..n {
            let node = self.make_node(alloc, key, key)?;
            let bucket = self.bucket_of(key);
            let head = mem.load(bucket);
            mem.store(node.offset(NEXT), head);
            mem.store(bucket, node.to_word());
        }
        Ok(())
    }
}

/// The allocator's backing memory.
///
/// Init-time helpers write directly to memory: single-threaded setup needs
/// no conflict tracking.
fn alloc_mem(alloc: &SimAlloc) -> &SharedMem {
    alloc.mem()
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime, TxMode};
    use std::sync::Arc;

    fn setup(lines: u32) -> (Arc<HtmRuntime>, SimAlloc) {
        let mem = Arc::new(simmem::SharedMem::new_lines(lines));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        (rt, alloc)
    }

    #[test]
    fn insert_lookup_remove_roundtrip() {
        let (rt, alloc) = setup(1024);
        let map = SimHashMap::create(&alloc, 8).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for key in [0u64, 1, 7, 8, 15, 100] {
            let node = map.make_node(&alloc, key, key * 10).unwrap();
            assert!(map.insert(&mut nt, node).unwrap());
        }
        assert_eq!(map.lookup(&mut nt, 7).unwrap(), Some(70));
        assert_eq!(map.lookup(&mut nt, 8).unwrap(), Some(80));
        assert_eq!(map.lookup(&mut nt, 9).unwrap(), None);
        assert_eq!(map.len(&mut nt).unwrap(), 6);
        let removed = map.remove(&mut nt, 7).unwrap();
        assert!(removed.is_some());
        assert_eq!(map.lookup(&mut nt, 7).unwrap(), None);
        // Key 15 shares bucket 7 (15 % 8) and must survive.
        assert_eq!(map.lookup(&mut nt, 15).unwrap(), Some(150));
        assert_eq!(map.len(&mut nt).unwrap(), 5);
    }

    #[test]
    fn insert_existing_updates_in_place() {
        let (rt, alloc) = setup(512);
        let map = SimHashMap::create(&alloc, 4).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let n1 = map.make_node(&alloc, 5, 50).unwrap();
        assert!(map.insert(&mut nt, n1).unwrap());
        let n2 = map.make_node(&alloc, 5, 99).unwrap();
        assert!(!map.insert(&mut nt, n2).unwrap(), "duplicate key: update");
        assert_eq!(map.lookup(&mut nt, 5).unwrap(), Some(99));
        assert_eq!(map.len(&mut nt).unwrap(), 1);
    }

    #[test]
    fn remove_middle_of_chain() {
        let (rt, alloc) = setup(512);
        let map = SimHashMap::create(&alloc, 1).unwrap(); // one chain
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for key in 0..5u64 {
            let n = map.make_node(&alloc, key, key).unwrap();
            map.insert(&mut nt, n).unwrap();
        }
        map.remove(&mut nt, 2).unwrap().unwrap();
        for key in [0u64, 1, 3, 4] {
            assert_eq!(map.lookup(&mut nt, key).unwrap(), Some(key));
        }
        assert_eq!(map.lookup(&mut nt, 2).unwrap(), None);
    }

    #[test]
    fn populate_builds_exact_bucket_lengths() {
        let (rt, alloc) = setup(4096);
        let map = SimHashMap::create(&alloc, 4).unwrap();
        map.populate(&alloc, 4 * 50).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        assert_eq!(map.len(&mut nt).unwrap(), 200);
        // Keys are round-robin over buckets: every bucket holds 50.
        for key in 0..200u64 {
            assert_eq!(map.lookup(&mut nt, key).unwrap(), Some(key));
        }
    }

    #[test]
    fn long_chain_lookup_overflows_htm_capacity() {
        // 200-node chain, ~96-line budget: looking up the deep end must
        // abort with Capacity, the effect the paper's "high capacity"
        // scenario is built on.
        let (rt, alloc) = setup(8192);
        let map = SimHashMap::create(&alloc, 1).unwrap();
        map.populate(&alloc, 200).unwrap();
        let mut ctx = rt.register();
        let mut tx = ctx.begin(TxMode::Htm);
        // populate() pushes at the head, so key 0 is deepest.
        let res = map.lookup(&mut tx, 0);
        assert_eq!(res, Err(htm::AbortCause::Capacity));
        drop(tx);
        // The same lookup in a ROT succeeds (untracked reads).
        let mut rot = ctx.begin(TxMode::Rot);
        assert_eq!(map.lookup(&mut rot, 0).unwrap(), Some(0));
        rot.commit().unwrap();
    }

    #[test]
    fn empty_map_behaviour() {
        let (rt, alloc) = setup(256);
        let map = SimHashMap::create(&alloc, 4).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        assert!(map.is_empty(&mut nt).unwrap());
        assert_eq!(map.lookup(&mut nt, 1).unwrap(), None);
        assert_eq!(map.remove(&mut nt, 1).unwrap(), None);
    }
}
