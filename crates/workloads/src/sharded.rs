//! A sharded key-value store over [`SimHashMap`], one elided read-write
//! lock per shard.
//!
//! The service layer (`crates/svc`) routes every request through this
//! wrapper: sharding multiplies the number of independent RW-LE instances
//! so concurrent connections exercise many quiescence barriers at once
//! instead of serializing on a single lock's writer path, while each
//! shard individually still runs the full paper protocol (uninstrumented
//! readers, speculative writers, grace-period barriers).
//!
//! Keys are spread over shards by a multiplicative hash that is
//! deliberately different from [`SimHashMap`]'s `key % buckets` bucket
//! choice, so skewed (Zipf-hot) key ranges do not land in one shard *and*
//! one bucket simultaneously.

use htm::{AbortCause, MemAccess, ThreadCtx};
use simmem::{Addr, AllocError, SimAlloc};
use stats::ThreadStats;

use crate::hashmap::SimHashMap;
use crate::scheme::{Scheme, SchemeKind};

/// Fibonacci multiplier for the shard spreader.
const SPREAD: u64 = 0x9e37_79b9_7f4a_7c15;

/// One shard: a hashmap plus the scheme instance that guards it.
struct Shard {
    map: SimHashMap,
    scheme: Scheme,
}

/// A sharded KV store, each shard guarded by its own [`Scheme`] lock.
pub struct ShardedKv {
    shards: Vec<Shard>,
}

/// Outcome of a [`ShardedKv::put`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutOutcome {
    /// The key was absent; a new node was linked in.
    Inserted,
    /// The key existed; its value was updated in place (the pre-built
    /// node was returned to the spare slot for reuse).
    Updated,
}

impl ShardedKv {
    /// Builds `n_shards` shards of `buckets_per_shard` buckets each, all
    /// using scheme `kind`, sized for `max_threads` worker threads.
    pub fn create(
        alloc: &SimAlloc,
        kind: SchemeKind,
        n_shards: usize,
        buckets_per_shard: u32,
        max_threads: usize,
    ) -> Result<Self, AllocError> {
        assert!(n_shards > 0, "need at least one shard");
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            let scheme = Scheme::build(kind, alloc, max_threads).map_err(|e| match e {
                rwle::RwLeError::Alloc(a) => a,
                // The fixed scheme presets never produce config errors.
                other => panic!("scheme build: {other}"),
            })?;
            shards.push(Shard {
                map: SimHashMap::create(alloc, buckets_per_shard)?,
                scheme,
            });
        }
        Ok(ShardedKv { shards })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard_of(&self, key: u64) -> &Shard {
        let spread = (key.wrapping_mul(SPREAD) >> 32) as usize;
        &self.shards[spread % self.shards.len()]
    }

    /// Looks `key` up (uninstrumented read under RW-LE).
    pub fn get(&self, ctx: &mut ThreadCtx, st: &mut ThreadStats, key: u64) -> Option<u64> {
        let shard = self.shard_of(key);
        shard
            .scheme
            .read_cs(ctx, st, &mut |acc| shard.map.lookup(acc, key))
    }

    /// Inserts or updates `key`. Allocation happens *outside* the
    /// critical section (standard pre-allocation under lock elision);
    /// `spare` recycles the node when the key already existed.
    pub fn put(
        &self,
        ctx: &mut ThreadCtx,
        st: &mut ThreadStats,
        alloc: &SimAlloc,
        spare: &mut Option<Addr>,
        key: u64,
        value: u64,
    ) -> Result<PutOutcome, AllocError> {
        let shard = self.shard_of(key);
        let node = match spare.take() {
            Some(n) => {
                // Re-initialize the detached (thread-private) node
                // directly in memory; it is not reachable by any reader.
                let mem = alloc.mem();
                mem.store(n, key);
                mem.store(n.offset(1), value);
                mem.store(n.offset(2), Addr::NULL.to_word());
                n
            }
            None => shard.map.make_node(alloc, key, value)?,
        };
        let linked = shard
            .scheme
            .write_cs(ctx, st, &mut |acc| shard.map.insert(acc, node));
        if linked {
            Ok(PutOutcome::Inserted)
        } else {
            *spare = Some(node);
            Ok(PutOutcome::Updated)
        }
    }

    /// Removes `key`, returning whether it was present. The unlinked node
    /// is *leaked* until process exit: concurrent uninstrumented readers
    /// may still be traversing it, and the service keeps no per-node
    /// grace-period bookkeeping (see DESIGN.md §8).
    pub fn del(&self, ctx: &mut ThreadCtx, st: &mut ThreadStats, key: u64) -> bool {
        let shard = self.shard_of(key);
        shard
            .scheme
            .write_cs(ctx, st, &mut |acc| map_remove(&shard.map, acc, key))
    }

    /// Looks up every key in `[start, start + count)` in **one** read
    /// critical section, appending present pairs to `out`. Long scans are
    /// the read-capacity stressor: under RW-LE they stay uninstrumented
    /// (no HTM footprint), under HLE-style baselines they abort.
    pub fn scan(
        &self,
        ctx: &mut ThreadCtx,
        st: &mut ThreadStats,
        start: u64,
        count: u32,
        out: &mut Vec<(u64, u64)>,
    ) {
        // Keys in the range may live in different shards; take each
        // shard's read CS once over its slice of the range.
        for shard_idx in 0..self.shards.len() {
            let shard = &self.shards[shard_idx];
            shard.scheme.read_cs(ctx, st, &mut |acc| {
                for key in start..start.saturating_add(count as u64) {
                    let spread = (key.wrapping_mul(SPREAD) >> 32) as usize;
                    if spread % self.shards.len() != shard_idx {
                        continue;
                    }
                    if let Some(v) = shard.map.lookup(acc, key)? {
                        out.push((key, v));
                    }
                }
                Ok(())
            });
        }
        out.sort_unstable();
    }

    /// Pre-loads keys `0..n` with `value = key`, single-threaded,
    /// bypassing the HTM layer (initialization precedes concurrency).
    pub fn populate(&self, alloc: &SimAlloc, n: u64) -> Result<(), AllocError> {
        let mem = alloc.mem();
        for key in 0..n {
            let shard = self.shard_of(key);
            let node = shard.map.make_node(alloc, key, key)?;
            let bucket = shard.map.bucket_addr(key);
            let head = mem.load(bucket);
            mem.store(node.offset(2), head);
            mem.store(bucket, node.to_word());
        }
        Ok(())
    }
}

/// `remove` narrowed to a presence bool (the caller leaks the node).
fn map_remove(map: &SimHashMap, acc: &mut dyn MemAccess, key: u64) -> Result<bool, AbortCause> {
    Ok(map.remove(acc, key)?.is_some())
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime};
    use simmem::SharedMem;
    use std::sync::Arc;

    fn setup(lines: u32) -> (Arc<HtmRuntime>, SimAlloc) {
        let mem = Arc::new(SharedMem::new_lines(lines));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        (rt, alloc)
    }

    #[test]
    fn basic_ops_roundtrip_across_shards() {
        let (rt, alloc) = setup(4096);
        let kv = ShardedKv::create(&alloc, SchemeKind::RwLeOpt, 4, 8, 2).unwrap();
        let mut ctx = rt.register();
        let mut st = ThreadStats::new();
        let mut spare = None;
        for key in 0..100u64 {
            let out = kv
                .put(&mut ctx, &mut st, &alloc, &mut spare, key, key * 3)
                .unwrap();
            assert_eq!(out, PutOutcome::Inserted);
        }
        for key in 0..100u64 {
            assert_eq!(kv.get(&mut ctx, &mut st, key), Some(key * 3));
        }
        // Update in place recycles the node through the spare slot.
        let out = kv
            .put(&mut ctx, &mut st, &alloc, &mut spare, 7, 999)
            .unwrap();
        assert_eq!(out, PutOutcome::Updated);
        assert!(spare.is_some());
        assert_eq!(kv.get(&mut ctx, &mut st, 7), Some(999));
        assert!(kv.del(&mut ctx, &mut st, 7));
        assert!(!kv.del(&mut ctx, &mut st, 7));
        assert_eq!(kv.get(&mut ctx, &mut st, 7), None);
    }

    #[test]
    fn scan_returns_sorted_present_range() {
        let (rt, alloc) = setup(4096);
        let kv = ShardedKv::create(&alloc, SchemeKind::RwLeOpt, 3, 8, 2).unwrap();
        kv.populate(&alloc, 50).unwrap();
        let mut ctx = rt.register();
        let mut st = ThreadStats::new();
        let mut out = Vec::new();
        kv.scan(&mut ctx, &mut st, 40, 20, &mut out);
        let expect: Vec<(u64, u64)> = (40..50).map(|k| (k, k)).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn populate_then_concurrent_mixed_ops_keep_torn_free() {
        let (rt, alloc) = setup(16384);
        let kv = Arc::new(ShardedKv::create(&alloc, SchemeKind::RwLeOpt, 4, 16, 4).unwrap());
        kv.populate(&alloc, 200).unwrap();
        let alloc = &alloc;
        std::thread::scope(|s| {
            for t in 0..4usize {
                let rt = Arc::clone(&rt);
                let kv = Arc::clone(&kv);
                s.spawn(move || {
                    let mut ctx = rt.register();
                    let mut st = ThreadStats::new();
                    let mut spare = None;
                    for i in 0..200u64 {
                        let key = (t as u64 * 131 + i * 7) % 400;
                        match i % 4 {
                            0 => {
                                kv.put(&mut ctx, &mut st, alloc, &mut spare, key, key + 1)
                                    .unwrap();
                            }
                            1 => {
                                if let Some(v) = kv.get(&mut ctx, &mut st, key) {
                                    // Values are always key or key+1.
                                    assert!(v == key || v == key + 1, "torn value {v} for {key}");
                                }
                            }
                            2 => {
                                kv.del(&mut ctx, &mut st, key);
                            }
                            _ => {
                                let mut out = Vec::new();
                                kv.scan(&mut ctx, &mut st, key, 8, &mut out);
                                for (k, v) in out {
                                    assert!(v == k || v == k + 1, "torn scan {v} for {k}");
                                }
                            }
                        }
                    }
                    // 150 single-shard ops + 50 scans × one read CS per
                    // shard.
                    assert_eq!(st.ops, 150 + 50 * kv.n_shards() as u64);
                });
            }
        });
    }
}
