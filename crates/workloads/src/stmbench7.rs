//! A scaled STMBench7-like CAD object graph (§4.2).
//!
//! STMBench7 models a cooperative CAD tool: a module contains a tree of
//! assemblies whose leaves reference *composite parts*; each composite
//! part owns a graph of ~100 *atomic parts* plus a document. Operations
//! traverse or mutate these structures, producing large, heterogeneous
//! critical sections — the workload that makes plain HLE collapse under
//! capacity aborts while RW-LE's uninstrumented readers and ROT writers
//! keep working.
//!
//! The reproduction keeps the structural essentials (the paper's
//! standard configuration disables long traversals and structural
//! modifications, leaving per-composite-part operations):
//!
//! * `n_composite` composite parts, each a line-per-node linked structure
//!   of `parts_per_composite` atomic parts with `x/y/date/doc` fields;
//! * read operations walk one composite's atomic parts and checksum them;
//! * write operations walk the same structure updating the `date` and
//!   swapping `x`/`y` of every atomic part (the classic ST/OP mix).

use htm::{AbortCause, MemAccess};
use simmem::{Addr, AllocError, SimAlloc};

/// Atomic-part field offsets.
const F_X: u32 = 0;
const F_Y: u32 = 1;
const F_DATE: u32 = 2;
const F_NEXT: u32 = 3;

/// Words per atomic part (one cache line after rounding).
pub const ATOMIC_PART_WORDS: u32 = 4;

/// The benchmark database: an index of composite parts.
pub struct Bench7 {
    /// Array of composite-part head pointers.
    index: Addr,
    n_composite: u32,
    parts_per_composite: u32,
}

impl Bench7 {
    /// Builds the object graph single-threadedly.
    pub fn build(
        alloc: &SimAlloc,
        n_composite: u32,
        parts_per_composite: u32,
    ) -> Result<Self, AllocError> {
        assert!(n_composite > 0 && parts_per_composite > 0);
        let index = alloc.alloc(n_composite)?;
        let mem = alloc.mem();
        for c in 0..n_composite {
            let mut head = Addr::NULL;
            for p in 0..parts_per_composite {
                let part = alloc.alloc(ATOMIC_PART_WORDS)?;
                mem.store(part.offset(F_X), (c as u64) << 32 | p as u64);
                mem.store(part.offset(F_Y), (p as u64) << 1);
                mem.store(part.offset(F_DATE), 0);
                mem.store(part.offset(F_NEXT), head.to_word());
                head = part;
            }
            mem.store(index.offset(c), head.to_word());
        }
        Ok(Bench7 {
            index,
            n_composite,
            parts_per_composite,
        })
    }

    /// Number of composite parts.
    pub fn n_composite(&self) -> u32 {
        self.n_composite
    }

    /// Atomic parts per composite part.
    pub fn parts_per_composite(&self) -> u32 {
        self.parts_per_composite
    }

    #[inline]
    fn head(&self, composite: u32) -> Addr {
        self.index.offset(composite % self.n_composite)
    }

    /// Read operation: traverse composite `c`'s atomic parts, returning a
    /// checksum of `x + y` (a short traversal, ST1-style).
    pub fn traverse(&self, acc: &mut dyn MemAccess, c: u32) -> Result<u64, AbortCause> {
        let mut sum = 0u64;
        let mut cur = Addr::from_word(acc.read(self.head(c))?);
        while !cur.is_null() {
            sum = sum
                .wrapping_add(acc.read(cur.offset(F_X))?)
                .wrapping_add(acc.read(cur.offset(F_Y))?);
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok(sum)
    }

    /// Read operation: check the x/y swap invariant across composite `c`.
    ///
    /// Write operations swap `x` and `y` of every part as one atomic unit,
    /// so the multiset `{x, y}` per part is an invariant readers can
    /// verify (used by the correctness tests).
    pub fn checksum_invariant(&self, acc: &mut dyn MemAccess, c: u32) -> Result<u64, AbortCause> {
        let mut sum = 0u64;
        let mut cur = Addr::from_word(acc.read(self.head(c))?);
        while !cur.is_null() {
            let x = acc.read(cur.offset(F_X))?;
            let y = acc.read(cur.offset(F_Y))?;
            sum = sum.wrapping_add(x).wrapping_add(y);
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok(sum)
    }

    /// Write operation (OP6-style): swap `x`/`y` of every atomic part of
    /// composite `c` and stamp `date`.
    pub fn swap_xy(&self, acc: &mut dyn MemAccess, c: u32, date: u64) -> Result<u32, AbortCause> {
        let mut touched = 0;
        let mut cur = Addr::from_word(acc.read(self.head(c))?);
        while !cur.is_null() {
            let x = acc.read(cur.offset(F_X))?;
            let y = acc.read(cur.offset(F_Y))?;
            acc.write(cur.offset(F_X), y)?;
            acc.write(cur.offset(F_Y), x)?;
            acc.write(cur.offset(F_DATE), date)?;
            touched += 1;
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok(touched)
    }

    /// Write operation (OP15-style): stamp the date of the first
    /// `k` atomic parts of composite `c` — a shorter update.
    pub fn touch_dates(
        &self,
        acc: &mut dyn MemAccess,
        c: u32,
        k: u32,
        date: u64,
    ) -> Result<u32, AbortCause> {
        let mut touched = 0;
        let mut cur = Addr::from_word(acc.read(self.head(c))?);
        while !cur.is_null() && touched < k {
            acc.write(cur.offset(F_DATE), date)?;
            touched += 1;
            cur = Addr::from_word(acc.read(cur.offset(F_NEXT))?);
        }
        Ok(touched)
    }

    /// Lines the graph occupies (for memory sizing).
    pub fn lines_needed(n_composite: u32, parts_per_composite: u32) -> u64 {
        let index_lines = (n_composite as u64).div_ceil(8).next_power_of_two();
        index_lines + n_composite as u64 * parts_per_composite as u64
    }
}

// ----------------------------------------------------------------------
// Assembly hierarchy (the upper half of the STMBench7 design)
// ----------------------------------------------------------------------

/// Assembly node field offsets (one line per assembly).
const A_DATE: u32 = 0;
const A_KIND: u32 = 1; // 0 = complex assembly, 1 = base assembly
const A_NCHILD: u32 = 2;
const A_CHILD0: u32 = 3; // up to 5 children / composite-part ids

/// Maximum children per assembly (fits one cache line).
pub const ASSEMBLY_FANOUT: u32 = 5;

/// Words per assembly node.
pub const ASSEMBLY_WORDS: u32 = 8;

/// The module's assembly hierarchy: complex assemblies forming a tree
/// whose leaves (base assemblies) reference composite parts of a
/// [`Bench7`] database by index.
pub struct Hierarchy {
    root: Addr,
    n_assemblies: u32,
}

impl Hierarchy {
    /// Builds a tree of the given `depth` and `fanout` (≤
    /// [`ASSEMBLY_FANOUT`]); leaves are base assemblies pointing at
    /// composite parts round-robin over `n_composite`.
    pub fn build(
        alloc: &SimAlloc,
        depth: u32,
        fanout: u32,
        n_composite: u32,
    ) -> Result<Self, AllocError> {
        assert!((1..=ASSEMBLY_FANOUT).contains(&fanout));
        assert!(depth >= 1);
        let mut count = 0u32;
        let mut next_part = 0u32;
        let root = Self::build_node(
            alloc,
            depth,
            fanout,
            n_composite,
            &mut count,
            &mut next_part,
        )?;
        Ok(Hierarchy {
            root,
            n_assemblies: count,
        })
    }

    fn build_node(
        alloc: &SimAlloc,
        depth: u32,
        fanout: u32,
        n_composite: u32,
        count: &mut u32,
        next_part: &mut u32,
    ) -> Result<Addr, AllocError> {
        let mem = alloc.mem();
        let node = alloc.alloc(ASSEMBLY_WORDS)?;
        *count += 1;
        if depth == 1 {
            // Base assembly: children are composite-part indices.
            mem.store(node.offset(A_KIND), 1);
            mem.store(node.offset(A_NCHILD), fanout as u64);
            for i in 0..fanout {
                mem.store(node.offset(A_CHILD0 + i), (*next_part % n_composite) as u64);
                *next_part += 1;
            }
        } else {
            mem.store(node.offset(A_KIND), 0);
            mem.store(node.offset(A_NCHILD), fanout as u64);
            for i in 0..fanout {
                let child =
                    Self::build_node(alloc, depth - 1, fanout, n_composite, count, next_part)?;
                mem.store(node.offset(A_CHILD0 + i), child.to_word());
            }
        }
        Ok(node)
    }

    /// Total assemblies in the tree.
    pub fn n_assemblies(&self) -> u32 {
        self.n_assemblies
    }

    /// Read traversal (T2/T3-style, long traversals disabled as in the
    /// paper's configuration): walk the assembly tree and, at every base
    /// assembly, traverse the referenced composite parts in `bench`,
    /// summing their checksums.
    pub fn traverse_read(
        &self,
        acc: &mut dyn MemAccess,
        bench: &Bench7,
    ) -> Result<u64, AbortCause> {
        self.traverse_node(acc, bench, self.root)
    }

    fn traverse_node(
        &self,
        acc: &mut dyn MemAccess,
        bench: &Bench7,
        node: Addr,
    ) -> Result<u64, AbortCause> {
        let kind = acc.read(node.offset(A_KIND))?;
        let n = acc.read(node.offset(A_NCHILD))? as u32;
        let mut sum = acc.read(node.offset(A_DATE))?;
        for i in 0..n.min(ASSEMBLY_FANOUT) {
            let child = acc.read(node.offset(A_CHILD0 + i))?;
            if kind == 1 {
                sum = sum.wrapping_add(bench.traverse(acc, child as u32)?);
            } else {
                sum = sum.wrapping_add(self.traverse_node(acc, bench, Addr::from_word(child))?);
            }
        }
        Ok(sum)
    }

    /// Write traversal (OP9/OP10-style): stamp every assembly's build
    /// date along the path to one leaf, then swap one composite part.
    pub fn touch_path(
        &self,
        acc: &mut dyn MemAccess,
        bench: &Bench7,
        leaf_selector: u32,
        date: u64,
    ) -> Result<u32, AbortCause> {
        let mut node = self.root;
        let mut touched = 0;
        loop {
            acc.write(node.offset(A_DATE), date)?;
            touched += 1;
            let kind = acc.read(node.offset(A_KIND))?;
            let n = acc.read(node.offset(A_NCHILD))? as u32;
            let pick = leaf_selector % n.max(1);
            let child = acc.read(node.offset(A_CHILD0 + pick))?;
            if kind == 1 {
                touched += bench.touch_dates(acc, child as u32, 5, date)?;
                return Ok(touched);
            }
            node = Addr::from_word(child);
        }
    }

    /// Lines needed for a tree of `depth`/`fanout` (geometric series).
    pub fn lines_needed(depth: u32, fanout: u32) -> u64 {
        let mut total = 0u64;
        let mut level = 1u64;
        for _ in 0..depth {
            total += level;
            level *= fanout as u64;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use htm::{HtmConfig, HtmRuntime, TxMode};
    use simmem::SharedMem;
    use std::sync::Arc;

    fn setup(n_composite: u32, parts: u32) -> (Arc<HtmRuntime>, SimAlloc, Bench7) {
        let lines = Bench7::lines_needed(n_composite, parts) + 1024;
        let mem = Arc::new(SharedMem::new_lines(lines as u32));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let b = Bench7::build(&alloc, n_composite, parts).unwrap();
        (rt, alloc, b)
    }

    #[test]
    fn build_and_traverse() {
        let (rt, _alloc, b) = setup(4, 10);
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for c in 0..4 {
            let sum = b.traverse(&mut nt, c).unwrap();
            assert!(sum > 0);
        }
    }

    #[test]
    fn swap_preserves_checksum() {
        let (rt, _alloc, b) = setup(2, 10);
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let before = b.checksum_invariant(&mut nt, 0).unwrap();
        let touched = b.swap_xy(&mut nt, 0, 99).unwrap();
        assert_eq!(touched, 10);
        let after = b.checksum_invariant(&mut nt, 0).unwrap();
        assert_eq!(before, after, "swap must preserve x+y per part");
    }

    #[test]
    fn touch_dates_is_bounded() {
        let (rt, _alloc, b) = setup(1, 20);
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        assert_eq!(b.touch_dates(&mut nt, 0, 5, 7).unwrap(), 5);
        assert_eq!(b.touch_dates(&mut nt, 0, 50, 7).unwrap(), 20);
    }

    #[test]
    fn hierarchy_builds_expected_node_count() {
        let (rt, alloc, b) = setup(10, 5);
        let h = Hierarchy::build(&alloc, 3, 3, b.n_composite()).unwrap();
        // depth 3, fanout 3: 1 + 3 + 9 = 13 assemblies.
        assert_eq!(h.n_assemblies(), 13);
        assert_eq!(Hierarchy::lines_needed(3, 3), 13);
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let sum = h.traverse_read(&mut nt, &b).unwrap();
        assert!(sum > 0);
    }

    #[test]
    fn touch_path_reaches_a_leaf_and_its_parts() {
        let (rt, alloc, b) = setup(10, 5);
        let h = Hierarchy::build(&alloc, 3, 3, b.n_composite()).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let touched = h.touch_path(&mut nt, &b, 7, 42).unwrap();
        // 3 assemblies on the path + 5 atomic parts.
        assert_eq!(touched, 3 + 5);
    }

    #[test]
    fn hierarchy_traversal_preserves_swap_invariant() {
        let (rt, alloc, b) = setup(6, 8);
        let h = Hierarchy::build(&alloc, 2, 3, b.n_composite()).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let before = h.traverse_read(&mut nt, &b).unwrap();
        for c in 0..6 {
            b.swap_xy(&mut nt, c, 1).unwrap();
        }
        // Dates changed (leaf assemblies untouched), x+y preserved; the
        // traversal sum only includes dates of assemblies (unchanged here)
        // plus x+y sums.
        let after = h.traverse_read(&mut nt, &b).unwrap();
        assert_eq!(before, after);
    }

    #[test]
    fn full_traversal_exceeds_htm_capacity() {
        // 100 parts ≈ 100 lines > the 96-line default read budget: the
        // property that cripples HLE on STMBench7.
        let (rt, _alloc, b) = setup(1, 100);
        let mut ctx = rt.register();
        let mut tx = ctx.begin(TxMode::Htm);
        assert_eq!(b.traverse(&mut tx, 0), Err(AbortCause::Capacity));
        drop(tx);
        let mut rot = ctx.begin(TxMode::Rot);
        assert!(b.traverse(&mut rot, 0).is_ok(), "ROT reads are unbounded");
        rot.commit().unwrap();
    }
}
