//! Multi-threaded measurement harness shared by tests and the
//! figure-regeneration binaries.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use htm::{HtmConfig, HtmRuntime, ThreadCtx};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use simmem::{Addr, SharedMem, SimAlloc};
use stats::{StatsSummary, ThreadStats};

use crate::backend::{BackendKind, SimBackend, StoreBackend, StoreSession};
use crate::hashmap::{SimHashMap, NODE_WORDS};
use crate::native::{NativeBackend, SglBackend};
use crate::scheme::{Scheme, SchemeKind};

/// Outcome of one measured run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock time of the parallel phase.
    pub wall: Duration,
    /// Merged per-thread statistics.
    pub summary: StatsSummary,
    /// Worker threads used.
    pub threads: usize,
}

impl RunResult {
    /// Completed operations per second.
    pub fn throughput(&self) -> f64 {
        self.summary.ops as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Spawns `threads` workers, each registered with `rt`, released together
/// by a barrier; returns the parallel phase's wall time and per-thread
/// stats.
pub fn run_threads<F>(rt: &Arc<HtmRuntime>, threads: usize, f: F) -> (Duration, Vec<ThreadStats>)
where
    F: Fn(usize, &mut ThreadCtx, &mut ThreadStats) + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let mut stats = Vec::new();
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let rt = Arc::clone(rt);
            let barrier = &barrier;
            let f = &f;
            handles.push(s.spawn(move || {
                let mut ctx = rt.register();
                let mut st = ThreadStats::new();
                barrier.wait();
                f(t, &mut ctx, &mut st);
                st
            }));
        }
        // Timestamp *before* releasing the barrier: the main thread may
        // not be rescheduled until workers finish (single-CPU hosts), so
        // stamping after the wait would undercount the parallel phase.
        let t0 = Instant::now();
        barrier.wait();
        for h in handles {
            stats.push(h.join().expect("worker panicked"));
        }
        wall = t0.elapsed();
    });
    (wall, stats)
}

/// Spawns `threads` workers over `backend`, each with its own
/// [`StoreSession`], released together by a barrier; returns the
/// parallel phase's wall time and per-session stats. The
/// backend-generic sibling of [`run_threads`] — correctness tests and
/// benches drive both substrates through it.
pub fn run_backend_threads<F>(
    backend: &dyn StoreBackend,
    threads: usize,
    f: F,
) -> (Duration, Vec<ThreadStats>)
where
    F: Fn(usize, &mut dyn StoreSession) + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let mut stats = Vec::new();
    let mut wall = Duration::ZERO;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let barrier = &barrier;
            let f = &f;
            handles.push(s.spawn(move || {
                // Sessions are created on the thread that uses them
                // (HTM contexts are not transferable between threads).
                let mut sess = backend.session();
                barrier.wait();
                f(t, &mut *sess);
                sess.take_stats()
            }));
        }
        // Same stamping rule as run_threads: before the release, not
        // after the wait.
        let t0 = Instant::now();
        barrier.wait();
        for h in handles {
            stats.push(h.join().expect("worker panicked"));
        }
        wall = t0.elapsed();
    });
    (wall, stats)
}

/// The four capacity × contention scenarios of §4.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// High capacity pressure (200 items/bucket), high contention (1 bucket).
    HcHc,
    /// High capacity pressure, low contention (many buckets).
    HcLc,
    /// Low capacity pressure (50 items/bucket), high contention.
    LcHc,
    /// Low capacity pressure, low contention — plus simulated paging
    /// pressure, which dominates this scenario in the paper.
    LcLc,
}

impl Scenario {
    /// All four scenarios, figure order (Figures 3–6).
    pub const ALL: [Scenario; 4] = [
        Scenario::HcHc,
        Scenario::HcLc,
        Scenario::LcHc,
        Scenario::LcLc,
    ];

    /// Command-line name.
    pub fn name(self) -> &'static str {
        match self {
            Scenario::HcHc => "hc-hc",
            Scenario::HcLc => "hc-lc",
            Scenario::LcHc => "lc-hc",
            Scenario::LcLc => "lc-lc",
        }
    }

    /// Parses a command-line name.
    pub fn parse(s: &str) -> Option<Scenario> {
        Scenario::ALL.into_iter().find(|sc| sc.name() == s)
    }

    /// Paper figure reproduced by this scenario.
    pub fn figure(self) -> &'static str {
        match self {
            Scenario::HcHc => "Figure 3",
            Scenario::HcLc => "Figure 4",
            Scenario::LcHc => "Figure 5",
            Scenario::LcLc => "Figure 6",
        }
    }

    /// Bucket count. The paper's low-contention scenarios use 100 000
    /// buckets; we scale to 10 000 (conflict probability stays negligible)
    /// to bound simulated-memory footprint — recorded in EXPERIMENTS.md.
    pub fn buckets(self) -> u32 {
        match self {
            Scenario::HcHc | Scenario::LcHc => 1,
            Scenario::HcLc | Scenario::LcLc => 10_000,
        }
    }

    /// Items per bucket: 200 gives ≈50% HTM read-capacity aborts on a
    /// full traversal, 50 gives ≈2% (paper §4.1).
    pub fn items_per_bucket(self) -> u32 {
        match self {
            Scenario::HcHc | Scenario::HcLc => 200,
            Scenario::LcHc | Scenario::LcLc => 50,
        }
    }

    /// Per-access transient-interrupt probability, modelling the paging
    /// pressure the paper's sparse low-capacity/low-contention hashmap
    /// puts on the VM subsystem.
    pub fn page_fault_prob(self) -> f64 {
        match self {
            Scenario::LcLc => 2e-3,
            _ => 0.0,
        }
    }
}

/// Parameters of one sensitivity-benchmark run.
#[derive(Debug, Clone)]
pub struct SensitivityParams {
    /// Synchronization scheme under test.
    pub scheme: SchemeKind,
    /// Workload scenario (capacity × contention).
    pub scenario: Scenario,
    /// Percentage of write critical sections (the paper's `w`).
    pub write_pct: u32,
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// RNG seed.
    pub seed: u64,
    /// SMT group size for the HTM engine (1 = no resource sharing; 8 =
    /// the paper's POWER8 cores).
    pub smt_group_size: u32,
}

impl SensitivityParams {
    /// Total initial items.
    pub fn n_items(&self) -> u64 {
        self.scenario.buckets() as u64 * self.scenario.items_per_bucket() as u64
    }
}

/// Runs one sensitivity-benchmark configuration end to end: build memory,
/// populate the hashmap, run the mixed workload, merge statistics.
pub fn run_sensitivity(p: &SensitivityParams) -> RunResult {
    let n_items = p.n_items();
    let total_writes = p.threads as u64 * p.ops_per_thread * p.write_pct as u64 / 100;
    // One line per node; removed nodes are reclaimed only after the run
    // (deferred reclamation), so size for the worst case.
    let node_lines = n_items + total_writes + p.threads as u64 * 2;
    let bucket_lines = (p.scenario.buckets() as u64)
        .div_ceil(8)
        .next_power_of_two();
    let lines = (node_lines + bucket_lines + 4096) * 9 / 8;
    let mem = Arc::new(SharedMem::new_lines(
        u32::try_from(lines).expect("workload too large for 32-bit address space"),
    ));
    let htm_cfg = HtmConfig::default()
        .with_page_faults(p.scenario.page_fault_prob())
        .with_seed(p.seed)
        .with_smt_group(p.smt_group_size.max(1));
    let rt = HtmRuntime::new(Arc::clone(&mem), htm_cfg);
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let scheme = Scheme::build(p.scheme, &alloc, p.threads).expect("lock allocation");
    let map = SimHashMap::create(&alloc, p.scenario.buckets()).expect("bucket allocation");
    map.populate(&alloc, n_items).expect("population");

    let key_range = n_items * 2;
    let (wall, stats) = run_threads(&rt, p.threads, |t, ctx, st| {
        let mut rng =
            SmallRng::seed_from_u64(p.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        // Spare node reused across failed inserts; never a removed node
        // (in-flight uninstrumented readers may still traverse those).
        let mut spare: Option<Addr> = None;
        for _ in 0..p.ops_per_thread {
            let key = rng.gen_range(0..key_range);
            let is_write = rng.gen_range(0..100) < p.write_pct;
            if !is_write {
                scheme.read_cs(ctx, st, &mut |acc| map.lookup(acc, key));
            } else if rng.gen_bool(0.5) {
                let node = match spare.take() {
                    Some(n) => {
                        // Re-initialize the detached (private) node.
                        mem.store(n, key);
                        mem.store(n.offset(1), key);
                        mem.store(n.offset(2), Addr::NULL.to_word());
                        n
                    }
                    None => map.make_node(&alloc, key, key).expect("node allocation"),
                };
                let linked = scheme.write_cs(ctx, st, &mut |acc| map.insert(acc, node));
                if !linked {
                    spare = Some(node);
                }
            } else {
                // Removed nodes leak until the end of the run (deferred
                // reclamation; see DESIGN.md).
                let _removed = scheme.write_cs(ctx, st, &mut |acc| map.remove(acc, key));
            }
        }
        let _ = NODE_WORDS; // silence unused-import paths in cfg variations
    });
    RunResult {
        wall,
        summary: StatsSummary::from_threads(&stats),
        threads: p.threads,
    }
}

/// [`run_sensitivity`]'s op mix routed through [`StoreBackend`]
/// sessions instead of raw scheme + hashmap calls, so the same figure
/// harness drives either substrate (`sensitivity --backend native`).
///
/// The scenario's contention profile maps onto each backend's own
/// granularity: the simulated store keeps the scenario's bucket count
/// on a single shard (HC-HC really is one bucket), while the native
/// store — whose conflict unit is the shard, not a bucket — clamps the
/// bucket count to a shard count (1 for the high-contention scenarios,
/// a modest fan-out for the low-contention ones). Page-fault injection
/// and SMT grouping are simulated-HTM knobs with no native equivalent;
/// they apply only on the sim backend.
pub fn run_sensitivity_backend(p: &SensitivityParams, kind: BackendKind) -> RunResult {
    let n_items = p.n_items();
    let total_writes = p.threads as u64 * p.ops_per_thread * p.write_pct as u64 / 100;
    let backend: Box<dyn StoreBackend> = match (kind, p.scheme) {
        (BackendKind::Sim, scheme) => Box::new(
            SimBackend::create(
                scheme,
                1,
                p.scenario.buckets(),
                n_items,
                total_writes + p.threads as u64 * 2,
                p.threads,
                p.seed,
            )
            .expect("sim backend build"),
        ),
        (BackendKind::Native, SchemeKind::Sgl) => Box::new(SglBackend::create(n_items)),
        (BackendKind::Native, _) => Box::new(NativeBackend::create(
            (p.scenario.buckets() as usize).min(64),
            p.threads,
            n_items,
        )),
    };
    let key_range = n_items * 2;
    let (wall, stats) = run_backend_threads(&*backend, p.threads, |t, sess| {
        let mut rng =
            SmallRng::seed_from_u64(p.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for _ in 0..p.ops_per_thread {
            let key = rng.gen_range(0..key_range);
            let is_write = rng.gen_range(0..100) < p.write_pct;
            if !is_write {
                sess.get(key);
            } else if rng.gen_bool(0.5) {
                // A full arena sheds the insert, mirroring the direct
                // harness's failed-link path (the op still counts).
                let _ = sess.put(key, key);
            } else {
                sess.del(key);
            }
        }
    });
    RunResult {
        wall,
        summary: StatsSummary::from_threads(&stats),
        threads: p.threads,
    }
}

// ----------------------------------------------------------------------
// STMBench7 (Figure 8)
// ----------------------------------------------------------------------

/// Parameters of one STMBench7-like run.
#[derive(Debug, Clone)]
pub struct Bench7Params {
    /// Synchronization scheme under test.
    pub scheme: SchemeKind,
    /// Percentage of update operations (the paper plots 10/50/90).
    pub write_pct: u32,
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Composite parts in the database ("medium" ≈ 200 at our scale).
    pub n_composite: u32,
    /// Atomic parts per composite part (100, as in STMBench7).
    pub parts_per_composite: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for Bench7Params {
    fn default() -> Self {
        Bench7Params {
            scheme: SchemeKind::RwLeOpt,
            write_pct: 10,
            threads: 2,
            ops_per_thread: 100,
            n_composite: 200,
            parts_per_composite: 100,
            seed: 1,
        }
    }
}

/// Runs one STMBench7-like configuration.
pub fn run_stmbench7(p: &Bench7Params) -> RunResult {
    use crate::stmbench7::{Bench7, Hierarchy};
    let lines = Bench7::lines_needed(p.n_composite, p.parts_per_composite)
        + Hierarchy::lines_needed(3, 3)
        + 4096;
    let mem = Arc::new(SharedMem::new_lines(lines as u32));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default().with_seed(p.seed));
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let scheme = Scheme::build(p.scheme, &alloc, p.threads).expect("lock allocation");
    let bench = Bench7::build(&alloc, p.n_composite, p.parts_per_composite).expect("graph build");
    let hier = Hierarchy::build(&alloc, 3, 3, p.n_composite).expect("hierarchy build");

    let (wall, stats) = run_threads(&rt, p.threads, |t, ctx, st| {
        let mut rng =
            SmallRng::seed_from_u64(p.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for op in 0..p.ops_per_thread {
            let c = rng.gen_range(0..p.n_composite);
            if rng.gen_range(0..100) < p.write_pct {
                let date = (t as u64) << 32 | op;
                // Mix of update operations: full x/y swaps (OP6-like),
                // short date updates (OP15-like), and assembly-path
                // updates through the hierarchy (OP9/OP10-like).
                let kind = rng.gen_range(0..100);
                if kind < 60 {
                    scheme.write_cs(ctx, st, &mut |acc| bench.swap_xy(acc, c, date));
                } else if kind < 90 {
                    scheme.write_cs(ctx, st, &mut |acc| bench.touch_dates(acc, c, 10, date));
                } else {
                    let leaf = rng.gen_range(0..1000);
                    scheme.write_cs(ctx, st, &mut |acc| hier.touch_path(acc, &bench, leaf, date));
                }
            } else {
                scheme.read_cs(ctx, st, &mut |acc| bench.traverse(acc, c));
            }
        }
    });
    RunResult {
        wall,
        summary: StatsSummary::from_threads(&stats),
        threads: p.threads,
    }
}

// ----------------------------------------------------------------------
// Kyoto CacheDB wicked (Figure 9)
// ----------------------------------------------------------------------

/// Parameters of one Kyoto-CacheDB wicked run.
#[derive(Debug, Clone)]
pub struct KyotoParams {
    /// Synchronization scheme under test.
    pub scheme: SchemeKind,
    /// Outer-lock write acquisitions per mille (the paper plots <1%, 5%,
    /// 10% → 5‰, 50‰, 100‰).
    pub write_permille: u32,
    /// Worker threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: u64,
    /// Database slots (each with its own inner mutex).
    pub n_slots: u32,
    /// Buckets per slot.
    pub buckets_per_slot: u32,
    /// Records loaded before the run.
    pub initial_items: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for KyotoParams {
    fn default() -> Self {
        KyotoParams {
            scheme: SchemeKind::RwLeOpt,
            write_permille: 50,
            threads: 2,
            ops_per_thread: 200,
            n_slots: 16,
            buckets_per_slot: 64,
            initial_items: 4096,
            seed: 2,
        }
    }
}

/// Runs one Kyoto-CacheDB wicked configuration.
pub fn run_kyoto(p: &KyotoParams) -> RunResult {
    use crate::kyoto::CacheDb;
    let total_sets = p.threads as u64 * p.ops_per_thread; // upper bound
    let lines =
        CacheDb::lines_needed(p.n_slots, p.buckets_per_slot, p.initial_items) + total_sets + 4096;
    let mem = Arc::new(SharedMem::new_lines(lines as u32));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default().with_seed(p.seed));
    let alloc = SimAlloc::new(Arc::clone(&mem));
    // One extra slot: the setup context below registers before workers.
    let scheme = Scheme::build(p.scheme, &alloc, p.threads + 1).expect("lock allocation");
    let db = CacheDb::create(&alloc, p.n_slots, p.buckets_per_slot).expect("db build");
    {
        // Initial load, single-threaded.
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        for k in 0..p.initial_items {
            let node = db.make_node(&alloc, k, k).expect("node");
            db.set(&mut nt, node).expect("initial set");
        }
    }
    let key_range = p.initial_items * 2;

    let (wall, stats) = run_threads(&rt, p.threads, |t, ctx, st| {
        let mut rng =
            SmallRng::seed_from_u64(p.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let mut spare: Option<Addr> = None;
        for _ in 0..p.ops_per_thread {
            if rng.gen_range(0..1000) < p.write_permille {
                // Database-wide operation: outer lock in write mode.
                scheme.write_cs(ctx, st, &mut |acc| db.touch_all_slots(acc));
                continue;
            }
            // Record operations: outer lock in read mode + inner mutex.
            let key = rng.gen_range(0..key_range);
            let kind = rng.gen_range(0..100);
            if kind < 70 {
                scheme.read_cs(ctx, st, &mut |acc| db.get(acc, key));
            } else if kind < 90 {
                let node = match spare.take() {
                    Some(n) => {
                        mem.store(n, key);
                        mem.store(n.offset(1), key);
                        mem.store(n.offset(2), Addr::NULL.to_word());
                        mem.store(n.offset(3), Addr::NULL.to_word());
                        n
                    }
                    None => db.make_node(&alloc, key, key).expect("node"),
                };
                let linked = scheme.read_cs(ctx, st, &mut |acc| db.set(acc, node));
                if !linked {
                    spare = Some(node);
                }
            } else {
                let _removed = scheme.read_cs(ctx, st, &mut |acc| db.remove(acc, key));
            }
        }
    });
    RunResult {
        wall,
        summary: StatsSummary::from_threads(&stats),
        threads: p.threads,
    }
}

// ----------------------------------------------------------------------
// TPC-C (Figure 10)
// ----------------------------------------------------------------------

/// Parameters of one TPC-C run.
#[derive(Debug, Clone)]
pub struct TpccParams {
    /// Synchronization scheme under test.
    pub scheme: SchemeKind,
    /// Percentage of update transactions (the paper plots 1/10/50).
    pub write_pct: u32,
    /// Worker threads.
    pub threads: usize,
    /// Transactions per thread.
    pub ops_per_thread: u64,
    /// Database scale.
    pub scale: crate::tpcc::TpccScale,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpccParams {
    fn default() -> Self {
        TpccParams {
            scheme: SchemeKind::RwLeOpt,
            write_pct: 10,
            threads: 2,
            ops_per_thread: 200,
            scale: crate::tpcc::TpccScale::default(),
            seed: 3,
        }
    }
}

/// Runs one TPC-C configuration.
pub fn run_tpcc(p: &TpccParams) -> RunResult {
    use crate::tpcc::{Tpcc, DISTRICTS_PER_WH};
    let lines = Tpcc::lines_needed(&p.scale) + 4096;
    let mem = Arc::new(SharedMem::new_lines(lines as u32));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default().with_seed(p.seed));
    let alloc = SimAlloc::new(Arc::clone(&mem));
    // One extra slot: the setup context below registers before workers.
    let scheme = Scheme::build(p.scheme, &alloc, p.threads + 1).expect("lock allocation");
    let db = Tpcc::build(&alloc, p.scale).expect("db build");
    {
        // Seed each district with enough orders that stock-level scans a
        // full 20-order window from the first operation (the capacity
        // profile the paper reports for TPC-C read sections).
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let mut rng = SmallRng::seed_from_u64(p.seed);
        for _ in 0..(p.scale.warehouses * DISTRICTS_PER_WH * 24) {
            let op = db.gen_new_order(&mut rng);
            db.new_order(&mut nt, &op).expect("seed order");
        }
    }

    let (wall, stats) = run_threads(&rt, p.threads, |t, ctx, st| {
        let mut rng =
            SmallRng::seed_from_u64(p.seed ^ (t as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        for _ in 0..p.ops_per_thread {
            if rng.gen_range(0..100) < p.write_pct {
                let kind = rng.gen_range(0..100);
                if kind < 45 {
                    let op = db.gen_new_order(&mut rng);
                    scheme.write_cs(ctx, st, &mut |acc| db.new_order(acc, &op));
                } else if kind < 90 {
                    let w = rng.gen_range(0..p.scale.warehouses);
                    let d = rng.gen_range(0..DISTRICTS_PER_WH);
                    let c = rng.gen_range(0..p.scale.customers_per_district);
                    let amount = rng.gen_range(1..5000);
                    scheme.write_cs(ctx, st, &mut |acc| db.payment(acc, w, d, c, amount));
                } else {
                    let w = rng.gen_range(0..p.scale.warehouses);
                    scheme.write_cs(ctx, st, &mut |acc| db.delivery(acc, w));
                }
            } else if rng.gen_bool(0.5) {
                let w = rng.gen_range(0..p.scale.warehouses);
                let d = rng.gen_range(0..DISTRICTS_PER_WH);
                let c = rng.gen_range(0..p.scale.customers_per_district);
                scheme.read_cs(ctx, st, &mut |acc| db.order_status(acc, w, d, c));
            } else {
                let w = rng.gen_range(0..p.scale.warehouses);
                let d = rng.gen_range(0..DISTRICTS_PER_WH);
                scheme.read_cs(ctx, st, &mut |acc| db.stock_level(acc, w, d, 60));
            }
        }
    });
    RunResult {
        wall,
        summary: StatsSummary::from_threads(&stats),
        threads: p.threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(scheme: SchemeKind, scenario: Scenario, write_pct: u32, threads: usize) -> RunResult {
        run_sensitivity(&SensitivityParams {
            scheme,
            scenario,
            write_pct,
            threads,
            ops_per_thread: 50,
            seed: 42,
            smt_group_size: 1,
        })
    }

    #[test]
    fn every_scheme_completes_lc_hc() {
        for scheme in SchemeKind::SENSITIVITY {
            let r = quick(scheme, Scenario::LcHc, 10, 3);
            assert_eq!(r.summary.ops, 150, "lost ops under {scheme:?}");
        }
    }

    #[test]
    fn rwle_opt_survives_high_capacity() {
        let r = quick(SchemeKind::RwLeOpt, Scenario::HcHc, 10, 2);
        assert_eq!(r.summary.ops, 100);
        // Reads are uninstrumented under RW-LE.
        assert!(r.summary.commits(stats::CommitKind::Uninstrumented) > 0);
    }

    #[test]
    fn hle_sees_capacity_aborts_in_hc() {
        let r = quick(SchemeKind::Hle, Scenario::HcHc, 10, 2);
        assert_eq!(r.summary.ops, 100);
        assert!(
            r.summary.aborts(stats::AbortBucket::HtmCapacity) > 0,
            "200-item buckets must overflow HTM read capacity"
        );
    }

    #[test]
    fn sensitivity_backend_completes_on_both_substrates() {
        for kind in [BackendKind::Sim, BackendKind::Native] {
            for scenario in [Scenario::HcHc, Scenario::LcHc] {
                let r = run_sensitivity_backend(
                    &SensitivityParams {
                        scheme: SchemeKind::RwLeOpt,
                        scenario,
                        write_pct: 30,
                        threads: 3,
                        ops_per_thread: 50,
                        seed: 42,
                        smt_group_size: 1,
                    },
                    kind,
                );
                assert_eq!(r.summary.ops, 150, "lost ops on {kind:?} {scenario:?}");
                assert!(
                    r.summary.commits(stats::CommitKind::Uninstrumented) > 0,
                    "RW-LE reads must stay uninstrumented on {kind:?}"
                );
            }
        }
    }

    #[test]
    fn sensitivity_backend_runs_the_sgl_canary() {
        let r = run_sensitivity_backend(
            &SensitivityParams {
                scheme: SchemeKind::Sgl,
                scenario: Scenario::LcHc,
                write_pct: 30,
                threads: 2,
                ops_per_thread: 40,
                seed: 7,
                smt_group_size: 1,
            },
            BackendKind::Native,
        );
        assert_eq!(r.summary.ops, 80);
        assert!(r.summary.commits(stats::CommitKind::Sgl) > 0);
    }

    #[test]
    fn scenario_parse_roundtrip() {
        for sc in Scenario::ALL {
            assert_eq!(Scenario::parse(sc.name()), Some(sc));
        }
        assert_eq!(Scenario::parse("bogus"), None);
    }

    #[test]
    fn stmbench7_runs_under_rwle_and_hle() {
        for scheme in [SchemeKind::RwLeOpt, SchemeKind::Hle] {
            let r = run_stmbench7(&Bench7Params {
                scheme,
                write_pct: 50,
                threads: 2,
                ops_per_thread: 30,
                n_composite: 20,
                parts_per_composite: 100,
                seed: 11,
            });
            assert_eq!(r.summary.ops, 60, "lost ops under {scheme:?}");
        }
    }

    #[test]
    fn kyoto_runs_under_every_scheme() {
        for scheme in SchemeKind::SENSITIVITY {
            let r = run_kyoto(&KyotoParams {
                scheme,
                write_permille: 100,
                threads: 2,
                ops_per_thread: 60,
                n_slots: 4,
                buckets_per_slot: 16,
                initial_items: 256,
                seed: 12,
            });
            assert_eq!(r.summary.ops, 120, "lost ops under {scheme:?}");
        }
    }

    #[test]
    fn tpcc_conserves_order_count() {
        // Under any scheme, district next_o_id totals must equal seeded
        // orders plus committed new-order transactions. We can't observe
        // the new-order count directly here, but totals must be identical
        // across schemes given the same seed (determinism of the op mix is
        // per-thread, and ops complete exactly once).
        for scheme in [SchemeKind::RwLeOpt, SchemeKind::Sgl] {
            let r = run_tpcc(&TpccParams {
                scheme,
                write_pct: 50,
                threads: 2,
                ops_per_thread: 50,
                scale: crate::tpcc::TpccScale::default(),
                seed: 13,
            });
            assert_eq!(r.summary.ops, 100, "lost ops under {scheme:?}");
        }
    }

    #[test]
    fn lc_lc_injects_transient_interrupts() {
        let r = quick(SchemeKind::Hle, Scenario::LcLc, 10, 2);
        assert_eq!(r.summary.ops, 100);
        // With p=2e-3 per access and ~25-line read sets, some aborts in
        // the HTM non-tx bucket (where interrupts are classified) are
        // overwhelmingly likely across 100 ops.
        assert!(r.summary.total_aborts() > 0);
    }
}
