//! The native execution backend: the RW-LE protocol over plain process
//! memory.
//!
//! Readers are truly uninstrumented — `enter` the epoch set, load the
//! active slot pointer, read an ordinary `BTreeMap`, `exit`. Writer
//! commit is emulated as **epoch-quiesced double-buffered publication**
//! (the PairLock/Left-Right active/inactive flip): each shard keeps two
//! copies of its map; a writer mutates the *inactive* copy under the
//! shard's writer mutex, flips the active index (the commit point — one
//! aggregate store, the native stand-in for a ROT's all-or-nothing store
//! burst), waits one grace period on the existing scalable summary-tree
//! barrier so no reader can still hold the old copy, then replays the
//! mutation into it. Outside a writer's critical section the two copies
//! are identical.
//!
//! What this keeps from the simulated backend: linearizable single-key
//! operations, torn-free reads, the quiescence-barrier structure (and
//! its `barrier_stalls`/`barriers_shared` accounting, including grace
//! sharing across shards through the one shared [`EpochSet`]). What it
//! drops: abort/commit breakdowns (nothing speculates, nothing aborts)
//! and `sched` schedule exploration (plain memory has no access hooks).
//!
//! ## Memory ordering
//!
//! The ISSUE's Release-flip/Acquire-load recipe is *not* sufficient:
//! reader entry (clock store, then active-index load) races the writer's
//! commit (active-index store, then clock scan) in the classic
//! store-buffering shape, and with Release/Acquire both sides can miss
//! each other — the writer would replay into a copy a reader still
//! traverses. Exactly the lazy-subscription unsafety Dice et al.
//! (arXiv:1407.6968) catalog. Both the flip and the reader's index load
//! are therefore `SeqCst`, joining the protocol's SeqCst commit-point
//! discipline: in the single total order, either the reader's clock
//! store precedes the writer's scan (the barrier waits for it) or the
//! reader sees the new index (and never touches the old copy).

use std::cell::UnsafeCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use epoch::EpochSet;
use stats::{CommitKind, ThreadStats};

use crate::backend::{
    BatchOutcome, DurableSink, Lsn, MutOp, MutReply, StoreBackend, StoreFull, StoreSession, NO_LSN,
};
use crate::sharded::PutOutcome;

/// Fibonacci multiplier for the shard spreader (same as [`crate::sharded`]).
const SPREAD: u64 = 0x9e37_79b9_7f4a_7c15;

/// One shard: two map copies, the active index, and the writer mutex
/// that serializes this shard's publications.
struct NativeShard {
    /// The two copies. Index [`NativeShard::reader_active_idx`] is read
    /// by any number of epoch-protected readers; the other copy is
    /// private to the mutex-holding writer.
    slots: [UnsafeCell<BTreeMap<u64, u64>>; 2],
    /// Which slot readers use (0 or 1).
    active: AtomicUsize,
    /// Serializes writers per shard.
    writer: Mutex<()>,
}

// SAFETY: the double-buffer protocol keeps the two `UnsafeCell` maps
// race-free. Readers only dereference `slots[active]` between epoch
// enter/exit; a writer only mutates `slots[1 - active]` while holding
// `writer`, and touches the previously-active copy only after a full
// grace period has drained every reader that could have observed its
// index (both the flip and the reader's index load are SeqCst, so a
// reader either sees the new index or its odd clock is seen by the
// barrier — see the module docs).
unsafe impl Sync for NativeShard {}

impl NativeShard {
    fn new() -> NativeShard {
        NativeShard {
            slots: [
                UnsafeCell::new(BTreeMap::new()),
                UnsafeCell::new(BTreeMap::new()),
            ],
            active: AtomicUsize::new(0),
            writer: Mutex::new(()),
        }
    }

    /// The active index as a reader loads it. SeqCst: races the writer's
    /// flip-then-scan in the store-buffering shape (see module docs);
    /// anything weaker lets both sides miss each other. Reader side of
    /// `wmm::proto`'s `native_flip_dekker` litmus, which kills every
    /// one-notch weakening with a reproducing seed.
    #[inline]
    fn reader_active_idx(&self) -> usize {
        self.active.load(Ordering::SeqCst)
    }

    /// The active index as the mutex-holding writer reads it. Relaxed:
    /// only writers store this index, and they are serialized by
    /// `writer`, so the lock's own synchronization already orders the
    /// previous writer's store before this load.
    #[inline]
    fn writer_active_idx(&self) -> usize {
        self.active.load(Ordering::Relaxed)
    }

    /// Flips readers onto `idx` — the commit point. SeqCst so the flip
    /// is ordered before the barrier's clock scan in the single total
    /// order (module docs; the paper's R1 commit-point discipline).
    /// Writer side of `wmm::proto`'s `native_flip_dekker` litmus.
    #[inline]
    fn publish(&self, idx: usize) {
        self.active.store(idx, Ordering::SeqCst);
    }

    /// Runs `f` over the active copy inside an epoch read section.
    fn read<R>(
        &self,
        epochs: &EpochSet,
        tid: usize,
        f: impl FnOnce(&BTreeMap<u64, u64>) -> R,
    ) -> R {
        epochs.enter(tid);
        let idx = self.reader_active_idx();
        // SAFETY: `idx` was active after our epoch entry, so any writer
        // that retires this copy must first complete a grace period that
        // includes us; the copy is not mutated while we hold it.
        let map = unsafe { &*self.slots[idx].get() };
        let out = f(map);
        epochs.exit(tid);
        out
    }

    /// Publishes `mutate` (applied to both copies around a quiescence
    /// barrier) and returns the first application's result.
    fn write<R>(
        &self,
        epochs: &EpochSet,
        tid: usize,
        st: &mut ThreadStats,
        snap: &mut Vec<u64>,
        mutate: impl Fn(&mut BTreeMap<u64, u64>) -> R,
    ) -> R {
        let _guard = self.writer.lock().unwrap();
        let active = self.writer_active_idx();
        let inactive = 1 - active;
        // SAFETY: the inactive copy is private to the mutex-holding
        // writer — readers dereference only the active index, and the
        // previous writer's grace period already drained everyone who
        // saw this copy as active.
        let out = mutate(unsafe { &mut *self.slots[inactive].get() });
        self.publish(inactive);
        let grace = epochs.grace_snapshot();
        let barrier = epochs.synchronize_from(Some(tid), grace, snap);
        st.barrier_stalls += barrier.stalls;
        st.barriers_shared += barrier.shared as u64;
        // SAFETY: the grace period drained every reader that could have
        // loaded `active` as its index; the copy is now writer-private.
        // Both copies held identical data before this call, so replaying
        // restores the identical-copies invariant.
        mutate(unsafe { &mut *self.slots[active].get() });
        out
    }
}

/// The native backend: plain-memory shards plus the shared epoch set
/// whose grace periods writers on *any* shard can share.
pub struct NativeBackend {
    shards: Vec<NativeShard>,
    epochs: EpochSet,
    next_tid: AtomicUsize,
    capacity: usize,
}

impl NativeBackend {
    /// Builds `n_shards` shards sized for `max_threads` sessions, with
    /// keys `0..prefill` pre-loaded as `value = key` (single-threaded,
    /// before any sharing).
    pub fn create(n_shards: usize, max_threads: usize, prefill: u64) -> NativeBackend {
        assert!(n_shards > 0, "need at least one shard");
        assert!(max_threads > 0, "need at least one session slot");
        let mut backend = NativeBackend {
            shards: (0..n_shards).map(|_| NativeShard::new()).collect(),
            epochs: EpochSet::new(max_threads),
            next_tid: AtomicUsize::new(0),
            capacity: max_threads,
        };
        for key in 0..prefill {
            let shard = shard_index(key, n_shards);
            // Both copies get the key: the identical-copies invariant
            // must hold before the first writer runs. `get_mut` needs no
            // unsafe — we still own the backend exclusively.
            for slot in backend.shards[shard].slots.iter_mut() {
                slot.get_mut().insert(key, key);
            }
        }
        backend
    }

    #[inline]
    fn shard_of(&self, key: u64) -> &NativeShard {
        &self.shards[shard_index(key, self.shards.len())]
    }

    /// Claims the next epoch slot. Relaxed: the counter only hands out
    /// distinct indices; slot ownership is published by the thread
    /// itself through the epoch clock, not through this counter.
    fn register(&self) -> usize {
        let tid = self.next_tid.fetch_add(1, Ordering::Relaxed);
        assert!(
            tid < self.capacity,
            "native backend sized for {} sessions, session {} requested",
            self.capacity,
            tid + 1
        );
        tid
    }
}

#[inline]
fn shard_index(key: u64, n_shards: usize) -> usize {
    ((key.wrapping_mul(SPREAD) >> 32) as usize) % n_shards
}

impl StoreBackend for NativeBackend {
    fn session(&self) -> Box<dyn StoreSession + '_> {
        Box::new(NativeSession {
            backend: self,
            tid: self.register(),
            st: ThreadStats::new(),
            snap: Vec::new(),
            groups: Vec::new(),
        })
    }

    fn label(&self) -> &'static str {
        "native"
    }
}

/// Per-thread session over [`NativeBackend`]: an epoch slot plus the
/// reusable barrier snapshot buffer and the per-shard grouping scratch
/// the batched apply path reuses across calls.
struct NativeSession<'a> {
    backend: &'a NativeBackend,
    tid: usize,
    st: ThreadStats,
    snap: Vec<u64>,
    groups: Vec<Vec<usize>>,
}

/// Applies one mutation to one map copy.
fn apply_one(map: &mut BTreeMap<u64, u64>, op: &MutOp) -> MutReply {
    match *op {
        MutOp::Put { key, value } => MutReply::Put(Ok(match map.insert(key, value) {
            None => PutOutcome::Inserted,
            Some(_) => PutOutcome::Updated,
        })),
        MutOp::Del { key } => MutReply::Del(map.remove(&key).is_some()),
    }
}

impl StoreSession for NativeSession<'_> {
    fn get(&mut self, key: u64) -> Option<u64> {
        let shard = self.backend.shard_of(key);
        let out = shard.read(&self.backend.epochs, self.tid, |map| map.get(&key).copied());
        // Reads are uninstrumented, exactly as under simulated RW-LE.
        self.st.commit(CommitKind::Uninstrumented);
        out
    }

    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull> {
        let shard = self.backend.shard_of(key);
        let prev = shard.write(
            &self.backend.epochs,
            self.tid,
            &mut self.st,
            &mut self.snap,
            |map| map.insert(key, value),
        );
        // The publication flip stands in for a ROT's aggregate store.
        self.st.commit(CommitKind::Rot);
        Ok(match prev {
            None => PutOutcome::Inserted,
            Some(_) => PutOutcome::Updated,
        })
    }

    fn del(&mut self, key: u64) -> bool {
        let shard = self.backend.shard_of(key);
        let removed = shard.write(
            &self.backend.epochs,
            self.tid,
            &mut self.st,
            &mut self.snap,
            |map| map.remove(&key).is_some(),
        );
        self.st.commit(CommitKind::Rot);
        removed
    }

    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>) {
        // One read section per shard over its slice of the range, same
        // as the sharded simulated store (and the same op accounting:
        // one uninstrumented commit per shard). Each shard holds only
        // its own keys, so the ordered map's range walk yields exactly
        // this shard's slice — no per-key shard filtering.
        let end = start.saturating_add(count as u64);
        for shard in &self.backend.shards {
            shard.read(&self.backend.epochs, self.tid, |map| {
                for (&k, &v) in map.range(start..end) {
                    out.push((k, v));
                }
            });
            self.st.commit(CommitKind::Uninstrumented);
        }
        out.sort_unstable();
    }

    /// The amortized batch path: group per shard, one flip per touched
    /// shard, **one** quiescence barrier for the whole batch.
    ///
    /// Within one batch epoch a shard may flip only once — a second flip
    /// before the replay would hand readers a copy missing the earlier
    /// group's mutations — so each shard's whole group is applied to its
    /// inactive copy before the single publication. Shard writer locks
    /// are taken in ascending shard order, the one lock order every
    /// batching session shares, so concurrent batches cannot deadlock
    /// (single-op `put`/`del` holds at most one shard lock and cannot
    /// participate in a cycle). The grace snapshot is taken by
    /// [`EpochSet::batch_barrier`] *after the last flip*, which is what
    /// makes one barrier cover every retired copy; see the module docs
    /// for why an earlier snapshot would be unsound.
    fn apply_batch(&mut self, ops: &[MutOp], replies: &mut Vec<MutReply>) -> BatchOutcome {
        let (out, _lsn) = self.apply_batch_inner(ops, replies, None);
        out
    }

    /// The durable override: the write-set is appended *between* the
    /// publication flips and the quiescence barrier, while every touched
    /// shard's writer lock is still held. Two batches that conflict on
    /// any shard serialize their appends through that shard's lock, so
    /// log order equals commit order without a global order lock — and
    /// the group-commit fsync the append kicks off runs concurrently
    /// with the grace period the batch pays anyway.
    fn apply_batch_durable(
        &mut self,
        ops: &[MutOp],
        replies: &mut Vec<MutReply>,
        sink: &dyn DurableSink,
    ) -> (BatchOutcome, Lsn) {
        self.apply_batch_inner(ops, replies, Some(sink))
    }

    fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.st)
    }
}

impl NativeSession<'_> {
    /// The batch path shared by the volatile and durable entry points;
    /// see [`StoreSession::apply_batch`] on `NativeSession` for the
    /// phase structure.
    fn apply_batch_inner(
        &mut self,
        ops: &[MutOp],
        replies: &mut Vec<MutReply>,
        sink: Option<&dyn DurableSink>,
    ) -> (BatchOutcome, Lsn) {
        replies.clear();
        if ops.is_empty() {
            return (BatchOutcome::default(), NO_LSN);
        }
        let n_shards = self.backend.shards.len();
        if self.groups.len() < n_shards {
            self.groups.resize(n_shards, Vec::new());
        }
        for group in &mut self.groups {
            group.clear();
        }
        for (i, op) in ops.iter().enumerate() {
            self.groups[shard_index(op.key(), n_shards)].push(i);
        }
        replies.resize(ops.len(), MutReply::Del(false));

        // Phase 1: apply each shard's group to its inactive copy and
        // publish — ascending shard order, locks held until the replay.
        let mut locked = Vec::with_capacity(n_shards.min(ops.len()));
        for (s, group) in self.groups.iter().enumerate().take(n_shards) {
            if group.is_empty() {
                continue;
            }
            let shard = &self.backend.shards[s];
            let guard = shard.writer.lock().unwrap();
            let active = shard.writer_active_idx();
            // SAFETY: the inactive copy is private to the mutex-holding
            // writer, exactly as in `NativeShard::write`.
            let map = unsafe { &mut *shard.slots[1 - active].get() };
            for &i in group {
                replies[i] = apply_one(map, &ops[i]);
            }
            shard.publish(1 - active);
            locked.push((s, guard, active));
        }

        // Phase 1.5 (durable only): append the write-set while the
        // shard locks are held — the commit-order window — so the log
        // flush rides the barrier below instead of extending the batch.
        // Native PUTs are infallible (process heap), so `ops` *is* the
        // effective write-set. The wal lock nests strictly inside the
        // shard locks on every path, so lock order is acyclic.
        let lsn = match sink {
            Some(sink) => sink.append(ops),
            None => NO_LSN,
        };

        // Phase 2: one barrier retires every copy the batch just
        // flipped away from (snapshot taken after the final flip).
        let barrier = self
            .backend
            .epochs
            .batch_barrier(Some(self.tid), &mut self.snap);
        self.st.barrier_stalls += barrier.stalls;
        self.st.barriers_shared += barrier.shared as u64;

        // Phase 3: replay each group into the retired copy to restore
        // the identical-copies invariant, then release the shard locks.
        for (s, _guard, old_active) in &locked {
            let shard = &self.backend.shards[*s];
            // SAFETY: the grace period above drained every reader that
            // could have held `old_active` as its index; the copy is now
            // writer-private (we still hold the shard's writer lock).
            let map = unsafe { &mut *shard.slots[*old_active].get() };
            for &i in &self.groups[*s] {
                apply_one(map, &ops[i]);
            }
        }
        drop(locked);

        // Same per-mutation accounting as the unbatched path: each
        // mutation is one ROT-emulated publication.
        for _ in ops {
            self.st.commit(CommitKind::Rot);
        }
        (
            BatchOutcome {
                barriers: (!barrier.shared) as u64,
                shared: barrier.shared as u64,
            },
            lsn,
        )
    }
}

/// Single-global-lock canary over plain process memory: one mutex around
/// one `BTreeMap`, none of the elision machinery. This is the
/// `--scheme SGL --backend native` baseline the CI batching gate
/// normalizes against — it reports the `"native"` backend label so
/// `regress --relative-to SGL` can match it to the RW-LE native rows at
/// the same configuration (the drift key includes the backend tag).
pub struct SglBackend {
    map: Mutex<BTreeMap<u64, u64>>,
}

impl SglBackend {
    /// Builds the locked map with keys `0..prefill` pre-loaded as
    /// `value = key`.
    pub fn create(prefill: u64) -> SglBackend {
        SglBackend {
            map: Mutex::new((0..prefill).map(|k| (k, k)).collect()),
        }
    }
}

impl StoreBackend for SglBackend {
    fn session(&self) -> Box<dyn StoreSession + '_> {
        Box::new(SglSession {
            backend: self,
            st: ThreadStats::new(),
        })
    }

    fn label(&self) -> &'static str {
        "native"
    }
}

/// Per-thread session over [`SglBackend`]: every operation takes the
/// global lock. `apply_batch` deliberately keeps the default per-op
/// loop — the canary must not benefit from the batching machinery it
/// exists to baseline.
struct SglSession<'a> {
    backend: &'a SglBackend,
    st: ThreadStats,
}

impl StoreSession for SglSession<'_> {
    fn get(&mut self, key: u64) -> Option<u64> {
        let out = self.backend.map.lock().unwrap().get(&key).copied();
        self.st.commit(CommitKind::Sgl);
        out
    }

    fn put(&mut self, key: u64, value: u64) -> Result<PutOutcome, StoreFull> {
        let prev = self.backend.map.lock().unwrap().insert(key, value);
        self.st.commit(CommitKind::Sgl);
        Ok(match prev {
            None => PutOutcome::Inserted,
            Some(_) => PutOutcome::Updated,
        })
    }

    fn del(&mut self, key: u64) -> bool {
        let removed = self.backend.map.lock().unwrap().remove(&key).is_some();
        self.st.commit(CommitKind::Sgl);
        removed
    }

    fn scan(&mut self, start: u64, count: u32, out: &mut Vec<(u64, u64)>) {
        let end = start.saturating_add(count as u64);
        let map = self.backend.map.lock().unwrap();
        for (&k, &v) in map.range(start..end) {
            out.push((k, v));
        }
        drop(map);
        self.st.commit(CommitKind::Sgl);
    }

    fn take_stats(&mut self) -> ThreadStats {
        std::mem::take(&mut self.st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copies_stay_identical_after_writes() {
        let backend = NativeBackend::create(2, 2, 20);
        {
            let mut s = backend.session();
            s.put(100, 7).unwrap();
            s.del(5);
            s.put(3, 99).unwrap();
        }
        for shard in &backend.shards {
            // SAFETY: the session is dropped and no other thread exists;
            // both copies are quiescent and safe to inspect.
            let a = unsafe { &*shard.slots[0].get() };
            // SAFETY: as above.
            let b = unsafe { &*shard.slots[1].get() };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn writer_barrier_accounting_flows_into_stats() {
        let backend = NativeBackend::create(1, 2, 0);
        let mut s = backend.session();
        for k in 0..50 {
            s.put(k, k).unwrap();
        }
        let st = s.take_stats();
        assert_eq!(st.commits(CommitKind::Rot), 50);
        assert_eq!(st.ops, 50);
    }

    #[test]
    #[should_panic(expected = "sized for 1 sessions")]
    fn oversubscribed_sessions_panic() {
        let backend = NativeBackend::create(1, 1, 0);
        let _a = backend.session();
        let _b = backend.session();
    }

    #[test]
    fn batched_apply_matches_sequential_semantics() {
        let backend = NativeBackend::create(4, 2, 10);
        let mut s = backend.session();
        let ops = [
            MutOp::Put { key: 100, value: 1 },
            MutOp::Del { key: 3 },
            // Same key twice in one batch: ops order must hold.
            MutOp::Put { key: 100, value: 2 },
            MutOp::Del { key: 100 },
            MutOp::Put { key: 7, value: 9 },
        ];
        let mut replies = Vec::new();
        let out = s.apply_batch(&ops, &mut replies);
        // The whole batch pays exactly one grace period (own or shared).
        assert_eq!(out.barriers + out.shared, 1);
        assert_eq!(
            replies,
            vec![
                MutReply::Put(Ok(PutOutcome::Inserted)),
                MutReply::Del(true),
                MutReply::Put(Ok(PutOutcome::Updated)),
                MutReply::Del(true),
                // Key 7 was prefilled.
                MutReply::Put(Ok(PutOutcome::Updated)),
            ]
        );
        assert_eq!(s.get(100), None);
        assert_eq!(s.get(7), Some(9));
        let st = s.take_stats();
        assert_eq!(st.commits(CommitKind::Rot), 5);
        drop(s);
        for shard in &backend.shards {
            // SAFETY: the session is dropped and no other thread exists;
            // both copies are quiescent and safe to inspect.
            let a = unsafe { &*shard.slots[0].get() };
            // SAFETY: as above.
            let b = unsafe { &*shard.slots[1].get() };
            assert_eq!(a, b);
        }
    }

    #[test]
    fn empty_batch_pays_no_barrier() {
        let backend = NativeBackend::create(2, 1, 0);
        let mut s = backend.session();
        let mut replies = vec![MutReply::Del(true)];
        let out = s.apply_batch(&[], &mut replies);
        assert_eq!(out, BatchOutcome::default());
        assert!(replies.is_empty());
    }

    #[test]
    fn sgl_canary_reports_native_label_and_sgl_commits() {
        let backend = SglBackend::create(20);
        assert_eq!(backend.label(), "native");
        let mut s = backend.session();
        assert_eq!(s.get(7), Some(7));
        assert_eq!(s.put(100, 1), Ok(PutOutcome::Inserted));
        assert!(s.del(100));
        let mut out = Vec::new();
        s.scan(0, 5, &mut out);
        assert_eq!(out.len(), 5);
        assert_eq!(s.take_stats().commits(CommitKind::Sgl), 4);
    }
}
