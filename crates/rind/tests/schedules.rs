//! Deterministic schedule exploration of the indicator revocation
//! protocol.
//!
//! The property under attack is **no lost reader**: a reader publishing
//! into the table concurrently with a writer revoking the bias and
//! collecting must either be seen by the collection scan (and waited out)
//! or observe the revocation and decline to the slow path. A lost reader
//! — certified yet invisible to the collector — would let the writer's
//! non-atomic two-word update overlap the read and shows up here as a
//! torn-pair assertion carrying the reproducing seed.
//!
//! The model is a minimal lock built from nothing but an indicator, a
//! writer flag, and a centralized slow-reader count — the same shape
//! `locks::IndicatedRwLock` and the rwle NS fallback use, with every
//! protocol step under `sched::step()`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use rind::{build, collect_wait, IndicatorKind, Publish, ReaderIndicator};

const READERS: usize = 2;
const WRITERS: usize = 2;
const READS: usize = 3;
const WRITES: usize = 2;

struct Model {
    ind: Arc<dyn ReaderIndicator>,
    writer: AtomicU64,
    slow: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    fast_reads: AtomicU64,
    slow_reads: AtomicU64,
}

impl Model {
    fn new(kind: IndicatorKind) -> Self {
        Model {
            ind: build(kind, READERS + WRITERS),
            writer: AtomicU64::new(0),
            slow: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            fast_reads: AtomicU64::new(0),
            slow_reads: AtomicU64::new(0),
        }
    }

    /// The pair must never tear: writers update `a` then `b` with a yield
    /// between, so any reader admitted during a write observes `a != b`.
    fn read_pair(&self) {
        let x = self.a.load(Ordering::SeqCst);
        sched::yield_point();
        let y = self.b.load(Ordering::SeqCst);
        assert_eq!(x, y, "torn pair: a reader was admitted during a write");
    }

    fn slow_read(&self) {
        loop {
            self.slow.fetch_add(1, Ordering::SeqCst);
            sched::yield_point();
            if self.writer.load(Ordering::SeqCst) == 0 {
                break;
            }
            self.slow.fetch_sub(1, Ordering::SeqCst);
            let mut bo = sched::Backoff::new();
            while self.writer.load(Ordering::SeqCst) != 0 {
                bo.snooze();
            }
        }
        self.read_pair();
        self.slow.fetch_sub(1, Ordering::SeqCst);
        self.ind.note_slow_read();
        self.slow_reads.fetch_add(1, Ordering::SeqCst);
    }

    fn read(&self, tid: usize) {
        match self.ind.publish(tid) {
            Publish::Certified(slot) => {
                // Certified: no writer check at all — the revocation
                // protocol alone must exclude us from write sections.
                self.read_pair();
                self.ind.retire(tid, slot);
                self.fast_reads.fetch_add(1, Ordering::SeqCst);
            }
            Publish::Published(slot) => {
                sched::yield_point();
                if self.writer.load(Ordering::SeqCst) == 0 {
                    self.read_pair();
                    self.ind.retire(tid, slot);
                    self.fast_reads.fetch_add(1, Ordering::SeqCst);
                } else {
                    self.ind.retire(tid, slot);
                    self.slow_read();
                }
            }
            Publish::Declined => self.slow_read(),
        }
    }

    fn write(&self) {
        let mut bo = sched::Backoff::new();
        while self
            .writer
            .compare_exchange(0, 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            bo.snooze();
        }
        let rev = self.ind.begin_collect();
        collect_wait(self.ind.as_ref(), &rev, None);
        let mut bo = sched::Backoff::new();
        while self.slow.load(Ordering::SeqCst) != 0 {
            bo.snooze();
        }
        let v = self.a.load(Ordering::SeqCst) + 1;
        self.a.store(v, Ordering::SeqCst);
        sched::yield_point();
        self.b.store(v, Ordering::SeqCst);
        self.writer.store(0, Ordering::SeqCst);
        self.ind.end_collect();
    }
}

fn revocation_schedule(kind: IndicatorKind, seed: u64) {
    let m = Arc::new(Model::new(kind));
    let mut s = sched::Scheduler::new(seed);
    for tid in 0..READERS {
        let m = Arc::clone(&m);
        s.spawn(move || {
            for _ in 0..READS {
                m.read(tid);
            }
        });
    }
    for _ in 0..WRITERS {
        let m = Arc::clone(&m);
        s.spawn(move || {
            for _ in 0..WRITES {
                m.write();
            }
        });
    }
    s.run();
    // Accounting: every read completed exactly once, on one of the paths.
    let fast = m.fast_reads.load(Ordering::SeqCst);
    let slow = m.slow_reads.load(Ordering::SeqCst);
    assert_eq!(fast + slow, (READERS * READS) as u64);
    assert_eq!(m.a.load(Ordering::SeqCst), (WRITERS * WRITES) as u64);
    assert_eq!(m.slow.load(Ordering::SeqCst), 0);
}

/// BRAVO publish/revoke race: the bias re-check against the collector's
/// revoke + scan. 320 seeds.
#[test]
fn bravo_revocation_schedules() {
    sched::explore("rind-bravo-revocation", 0..320, |seed| {
        revocation_schedule(IndicatorKind::Bravo, seed)
    });
}

/// Cloned (no bias): the Dekker race between slot-publish/writer-check
/// and set-writer/scan. 320 seeds.
#[test]
fn cloned_revocation_schedules() {
    sched::explore("rind-cloned-revocation", 0..320, |seed| {
        revocation_schedule(IndicatorKind::Cloned, seed)
    });
}

/// Central (null indicator): everything funnels through the slow path;
/// the model degenerates to a plain writer-preference lock. 150 seeds.
#[test]
fn central_revocation_schedules() {
    sched::explore("rind-central-revocation", 0..150, |seed| {
        revocation_schedule(IndicatorKind::Central, seed)
    });
}

/// The rebias policy itself raced against collectors: slow readers keep
/// nudging `note_slow_read` while writers collect; the bias must never be
/// observed set by `begin_collect` without the collection scan running
/// (that is what `rev.revoked => rev.must_scan` encodes), and the run must
/// terminate with consistent data. 320 seeds.
#[test]
fn bravo_rebias_vs_collect_schedules() {
    sched::explore("rind-bravo-rebias", 0..320, |seed| {
        let m = Arc::new(Model::new(IndicatorKind::Bravo));
        let mut s = sched::Scheduler::new(seed);
        {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..8 {
                    m.ind.note_slow_read();
                    sched::yield_point();
                }
            });
        }
        {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..READS {
                    m.read(0);
                }
            });
        }
        {
            let m = Arc::clone(&m);
            s.spawn(move || {
                for _ in 0..WRITES {
                    m.write();
                }
            });
        }
        s.run();
        assert_eq!(m.a.load(Ordering::SeqCst), WRITES as u64);
        assert_eq!(m.a.load(Ordering::SeqCst), m.b.load(Ordering::SeqCst));
    });
}
