//! Read-side **reader indicators** — pluggable visibility schemes for the
//! fallback (non-elided) read paths.
//!
//! The paper's elision fast path gives readers a free ride through the
//! hardware, but the moment elision is disabled or exhausted every reader
//! funnels through centralized state: a shared counter, a lock word, or an
//! epoch slot that writers must scan. A *reader indicator* abstracts the
//! question "which readers are inside?" behind a small protocol so the
//! answer can be maintained centrally (cheap for writers, a coherence
//! hot-spot for readers) or distributedly (one private store per reader,
//! a bounded scan for writers).
//!
//! Three implementations ship behind [`ReaderIndicator`]:
//!
//! * [`CentralIndicator`] — the null indicator. Every publish is
//!   [`Publish::Declined`], so callers keep using whatever centralized
//!   accounting they already have. This is the seed behaviour, kept as the
//!   baseline.
//! * [`BravoIndicator`] — BRAVO (Dice & Kogan, arXiv:1810.01553): a
//!   process-global, cache-line-padded *visible-readers table*. A reader
//!   hashes `(indicator id, thread id)` to a slot, publishes with one
//!   compare-and-swap, and re-checks the indicator's **bias** word; while
//!   the bias is set the publication alone certifies the read (no writer
//!   check needed). A writer *revokes* the bias and scans the table,
//!   waiting out published readers. An adaptive rebias policy bounds the
//!   scan cost against the slow-path fraction (see [`BravoIndicator`]).
//! * [`ClonedIndicator`] — one padded slot per thread, owned by the
//!   indicator instance. Readers always publish ([`Publish::Published`])
//!   and must still perform their own writer check (Dekker-style); writers
//!   always scan all slots. The classic big-reader/cloned-lock layout,
//!   here as the no-bias comparison point.
//!
//! # The bias-word dichotomy
//!
//! The soundness argument is the *enter-vs-scan dichotomy* from the epoch
//! layer, extended to the bias word (docs/PROTOCOL.md): a reader's slot
//! CAS and bias re-check are `SeqCst`, a writer's bias revocation and slot
//! scan are `SeqCst`. In the single total order, if the reader's re-check
//! observed the bias set, it precedes the writer's revocation, so the
//! reader's earlier slot publication precedes the writer's later scan —
//! the scan *must* see the slot and wait the reader out. Otherwise the
//! reader observes the revocation and declines to the slow path. There is
//! no interleaving in which a certified reader is invisible to a
//! collecting writer: no lost reader.
//!
//! All protocol steps run under `sched::step()` so the schedule-exploration
//! suites (`tests/schedules.rs`) can drive every interleaving of the
//! publish/revoke race.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Which reader-indicator scheme a lock (or epoch set) uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndicatorKind {
    /// Centralized accounting (the seed behaviour) — the null indicator.
    #[default]
    Central,
    /// BRAVO-style global visible-readers table with a revocable bias.
    Bravo,
    /// Per-thread cloned slots, always published, writer scans all.
    Cloned,
}

impl IndicatorKind {
    /// Short scheme label used by benches and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            IndicatorKind::Central => "central",
            IndicatorKind::Bravo => "bravo",
            IndicatorKind::Cloned => "cloned",
        }
    }

    /// Parses a CLI spelling (`central` | `bravo` | `cloned`).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "central" => Some(IndicatorKind::Central),
            "bravo" => Some(IndicatorKind::Bravo),
            "cloned" => Some(IndicatorKind::Cloned),
            _ => None,
        }
    }
}

/// Outcome of a reader's publication attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Publish {
    /// Published *and* bias-certified: the publication alone admits the
    /// read. The caller may skip its writer check entirely — any writer
    /// must revoke the bias and scan the table before mutating, and the
    /// dichotomy guarantees the scan sees this slot.
    Certified(u32),
    /// Published but not certified: the slot is visible to collecting
    /// writers, but the caller must still perform its own writer check
    /// (Dekker-style) before proceeding, and [`ReaderIndicator::retire`]
    /// the slot if the check fails.
    Published(u32),
    /// Not published — take the centralized slow path.
    Declined,
}

/// What a writer learned when it began collecting readers.
#[derive(Debug, Clone, Copy)]
pub struct Revocation {
    /// The bias was set and this collector cleared it (a *revocation* in
    /// BRAVO's sense). Feeds `ThreadStats::revocations`.
    pub revoked: bool,
    /// The table may hold live readers and must be scanned. When `false`
    /// (bias was already clear **and** no other collector was active) the
    /// scan is provably empty and is skipped — see
    /// [`BravoIndicator::begin_collect`] for the argument.
    pub must_scan: bool,
}

/// A pluggable read-side visibility scheme.
///
/// Reader protocol: [`publish`](ReaderIndicator::publish) on entry; on
/// exit, [`retire`](ReaderIndicator::retire) the slot returned by a
/// `Certified`/`Published` outcome. A reader that fell through to the
/// centralized slow path reports it via
/// [`note_slow_read`](ReaderIndicator::note_slow_read) (which drives the
/// rebias policy).
///
/// Writer protocol: [`begin_collect`](ReaderIndicator::begin_collect)
/// (revokes the bias), then either [`collect_wait`] to wait published
/// readers out (lock-style) or [`collect`](ReaderIndicator::collect) to
/// enumerate them and wait on some other channel (epoch-style, waiting on
/// per-thread clocks), then [`end_collect`](ReaderIndicator::end_collect)
/// once the critical section is over. Writers that are already serialized
/// by their own lock word and gate reader rebias behind their own drain
/// protocol can use the registration-free
/// [`revoke_serialized`](ReaderIndicator::revoke_serialized) instead.
pub trait ReaderIndicator: Send + Sync {
    /// Which scheme this is.
    fn kind(&self) -> IndicatorKind;

    /// Attempts to publish thread `tid` as an active reader.
    fn publish(&self, tid: usize) -> Publish;

    /// Withdraws a publication made by `publish` (same `tid`, the slot it
    /// returned).
    fn retire(&self, tid: usize, slot: u32);

    /// Begins a collection: revokes the bias (if any) and registers this
    /// caller as an active collector, blocking rebias until
    /// [`end_collect`](ReaderIndicator::end_collect).
    fn begin_collect(&self) -> Revocation;

    /// Ends a collection begun by
    /// [`begin_collect`](ReaderIndicator::begin_collect).
    fn end_collect(&self);

    /// Enumerates currently published readers of *this* indicator as
    /// `(slot, tid)` pairs. Honours `rev.must_scan` (no-op when `false`).
    fn collect(&self, rev: &Revocation, each: &mut dyn FnMut(u32, usize));

    /// Whether a previously observed `(slot, tid)` publication has been
    /// withdrawn (or the slot reused by an unrelated reader).
    fn vacated(&self, slot: u32, tid: usize) -> bool;

    /// A reader took the centralized slow path. Drives the adaptive
    /// rebias policy; cheap no-op for indicators without a bias.
    fn note_slow_read(&self);

    /// Records a slow read **without** attempting a rebias; returns `true`
    /// when the rebias policy wants one. The caller must then invoke
    /// [`try_rebias`](ReaderIndicator::try_rebias) from a context where no
    /// [serialized collection](ReaderIndicator::revoke_serialized) can be
    /// in progress — e.g. `rwle` calls it from inside the reader's epoch
    /// after observing the NS lock free, so a concurrent NS writer's
    /// quiescence barrier is guaranteed to drain the rebias before the
    /// writer's post-quiescence re-check. Indicators without a bias
    /// return `false`.
    fn note_slow_read_deferred(&self) -> bool {
        false
    }

    /// Attempts to re-enable the bias (the deferred half of
    /// [`note_slow_read_deferred`](ReaderIndicator::note_slow_read_deferred)).
    /// No-op for indicators without a bias.
    fn try_rebias(&self) {}

    /// Serialized-collector revocation: the cheap alternative to the
    /// [`begin_collect`](ReaderIndicator::begin_collect)/
    /// [`end_collect`](ReaderIndicator::end_collect) pair, with no
    /// registration and no paired end call. The caller must guarantee
    /// **(a)** its collections are mutually exclusive (serialized by an
    /// external writer lock) and **(b)** every rebias attempt is gated by
    /// [`note_slow_read_deferred`](ReaderIndicator::note_slow_read_deferred)
    /// +[`try_rebias`](ReaderIndicator::try_rebias) placed so that the
    /// caller's own reader-drain protocol flushes any rebias racing a
    /// collection — and it must call this method *again* after that drain
    /// to catch one that slipped in (see `rwle`'s NS write path). Under
    /// those guarantees, observing the bias already clear proves no
    /// certified reader is live, so the scan is skipped entirely.
    fn revoke_serialized(&self) -> Revocation;

    /// Reports the measured cost (stall iterations) of a completed
    /// collection so the rebias policy can bound scan cost against the
    /// slow-path fraction.
    fn note_collect_cost(&self, stalls: u64);

    /// Whether the read bias is currently enabled (tests/benches).
    fn bias_enabled(&self) -> bool;
}

/// Constructs an indicator of the given kind sized for `max_threads`.
///
/// Returns a trait object; callers on a read-side fast path should prefer
/// [`Indicator::build`], whose enum dispatch lets `publish`/`retire`
/// inline into the caller.
pub fn build(kind: IndicatorKind, max_threads: usize) -> Arc<dyn ReaderIndicator> {
    Indicator::build(kind, max_threads)
}

/// A statically dispatched indicator: the enum counterpart of
/// `Arc<dyn ReaderIndicator>`.
///
/// Virtual dispatch costs a few nanoseconds per call and — worse — hides
/// the slot hash and CAS from the inliner. On the certified read path
/// (publish + retire around a tiny critical section) that overhead is a
/// measurable fraction of the whole acquisition, so the hot callers
/// (`rwle::RwLe::read_cs`, epoch registration) hold this enum instead.
/// `Indicator` also implements [`ReaderIndicator`], so it coerces to the
/// trait object wherever genericity matters more than the last few
/// nanoseconds (e.g. [`collect_wait`]).
pub enum Indicator {
    /// The null indicator (see [`CentralIndicator`]).
    Central(CentralIndicator),
    /// BRAVO (see [`BravoIndicator`]).
    Bravo(BravoIndicator),
    /// Per-thread cloned slots (see [`ClonedIndicator`]).
    Cloned(ClonedIndicator),
}

/// Forwards one method to whichever variant is live, statically.
macro_rules! each_variant {
    ($self:ident, $i:pat => $body:expr) => {
        match $self {
            Indicator::Central($i) => $body,
            Indicator::Bravo($i) => $body,
            Indicator::Cloned($i) => $body,
        }
    };
}

impl Indicator {
    /// Constructs an indicator of the given kind sized for `max_threads`.
    /// Hot-path holders (`rwle`, epoch registration) embed the enum
    /// inline — no `Arc` indirection on the publish path.
    pub fn new(kind: IndicatorKind, max_threads: usize) -> Indicator {
        match kind {
            IndicatorKind::Central => Indicator::Central(CentralIndicator::new()),
            IndicatorKind::Bravo => Indicator::Bravo(BravoIndicator::sized(max_threads)),
            IndicatorKind::Cloned => Indicator::Cloned(ClonedIndicator::new(max_threads)),
        }
    }

    /// [`Indicator::new`] behind an `Arc`, for holders that share it.
    pub fn build(kind: IndicatorKind, max_threads: usize) -> Arc<Indicator> {
        Arc::new(Self::new(kind, max_threads))
    }

    /// Statically dispatched [`ReaderIndicator::publish`].
    #[inline]
    pub fn publish(&self, tid: usize) -> Publish {
        each_variant!(self, i => i.publish(tid))
    }

    /// Statically dispatched [`ReaderIndicator::retire`].
    #[inline]
    pub fn retire(&self, tid: usize, slot: u32) {
        each_variant!(self, i => i.retire(tid, slot))
    }

    /// Statically dispatched [`ReaderIndicator::note_slow_read`].
    #[inline]
    pub fn note_slow_read(&self) {
        each_variant!(self, i => i.note_slow_read())
    }

    /// Statically dispatched [`ReaderIndicator::note_slow_read_deferred`].
    #[inline]
    pub fn note_slow_read_deferred(&self) -> bool {
        each_variant!(self, i => i.note_slow_read_deferred())
    }

    /// Statically dispatched [`ReaderIndicator::try_rebias`].
    pub fn try_rebias(&self) {
        each_variant!(self, i => i.try_rebias())
    }

    /// Statically dispatched [`ReaderIndicator::revoke_serialized`].
    pub fn revoke_serialized(&self) -> Revocation {
        each_variant!(self, i => i.revoke_serialized())
    }
}

impl ReaderIndicator for Indicator {
    fn kind(&self) -> IndicatorKind {
        each_variant!(self, i => i.kind())
    }

    fn publish(&self, tid: usize) -> Publish {
        Indicator::publish(self, tid)
    }

    fn retire(&self, tid: usize, slot: u32) {
        Indicator::retire(self, tid, slot)
    }

    fn begin_collect(&self) -> Revocation {
        each_variant!(self, i => i.begin_collect())
    }

    fn end_collect(&self) {
        each_variant!(self, i => i.end_collect())
    }

    fn collect(&self, rev: &Revocation, each: &mut dyn FnMut(u32, usize)) {
        each_variant!(self, i => i.collect(rev, each))
    }

    fn vacated(&self, slot: u32, tid: usize) -> bool {
        each_variant!(self, i => i.vacated(slot, tid))
    }

    fn note_slow_read(&self) {
        Indicator::note_slow_read(self)
    }

    fn note_slow_read_deferred(&self) -> bool {
        Indicator::note_slow_read_deferred(self)
    }

    fn try_rebias(&self) {
        Indicator::try_rebias(self)
    }

    fn revoke_serialized(&self) -> Revocation {
        Indicator::revoke_serialized(self)
    }

    fn note_collect_cost(&self, stalls: u64) {
        each_variant!(self, i => i.note_collect_cost(stalls))
    }

    fn bias_enabled(&self) -> bool {
        each_variant!(self, i => i.bias_enabled())
    }
}

/// Waits out every reader published in the indicator (lock-style
/// collection): enumerates occupied slots and spins (with backoff) until
/// each is vacated. `skip` exempts the collector's own thread id, so a
/// writer that is itself inside a read-side nest cannot deadlock on its
/// own slot. Returns the number of stall iterations and reports it to the
/// rebias policy.
pub fn collect_wait(ind: &dyn ReaderIndicator, rev: &Revocation, skip: Option<usize>) -> u64 {
    let mut stalls = 0u64;
    ind.collect(rev, &mut |slot, tid| {
        if skip == Some(tid) {
            return;
        }
        let mut bo = sched::Backoff::new();
        while !ind.vacated(slot, tid) {
            stalls += 1;
            bo.snooze();
        }
    });
    ind.note_collect_cost(stalls);
    stalls
}

/// A cache-line-padded table slot (avoids false sharing between adjacent
/// readers — the whole point of distributing the indicator).
#[repr(align(64))]
struct PaddedSlot(AtomicU64);

// ---------------------------------------------------------------------------
// Central (null) indicator
// ---------------------------------------------------------------------------

/// The null indicator: never publishes, never needs scanning. Callers fall
/// through to their existing centralized accounting, making this the
/// zero-overhead baseline every other indicator is measured against.
#[derive(Default)]
pub struct CentralIndicator;

impl CentralIndicator {
    /// Creates the null indicator.
    pub fn new() -> Self {
        CentralIndicator
    }
}

impl ReaderIndicator for CentralIndicator {
    fn kind(&self) -> IndicatorKind {
        IndicatorKind::Central
    }

    #[inline]
    fn publish(&self, _tid: usize) -> Publish {
        Publish::Declined
    }

    fn retire(&self, _tid: usize, _slot: u32) {
        unreachable!("central indicator never publishes");
    }

    fn begin_collect(&self) -> Revocation {
        Revocation {
            revoked: false,
            must_scan: false,
        }
    }

    fn end_collect(&self) {}

    fn collect(&self, _rev: &Revocation, _each: &mut dyn FnMut(u32, usize)) {}

    fn vacated(&self, _slot: u32, _tid: usize) -> bool {
        true
    }

    fn note_slow_read(&self) {}

    fn revoke_serialized(&self) -> Revocation {
        Revocation {
            revoked: false,
            must_scan: false,
        }
    }

    fn note_collect_cost(&self, _stalls: u64) {}

    fn bias_enabled(&self) -> bool {
        false
    }
}

// ---------------------------------------------------------------------------
// BRAVO indicator
// ---------------------------------------------------------------------------

/// Slots in the process-global visible-readers table. Power of two so the
/// hash reduces with a mask. 1024 padded slots = 64 KiB of static data,
/// shared by every [`BravoIndicator`] in the process (BRAVO's design: the
/// table is global, slots are claimed per `(lock, thread)` pair, and
/// collisions simply decline to the slow path).
const TABLE_SLOTS: usize = 1024;

/// The global visible-readers table. A slot holds `0` when free, otherwise
/// `(indicator id << 32) | (tid + 1)`.
static TABLE: [PaddedSlot; TABLE_SLOTS] = [const { PaddedSlot(AtomicU64::new(0)) }; TABLE_SLOTS];

/// Allocator for indicator instance ids (nonzero, so a packed slot value
/// is never 0).
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// Bias bit of the packed state word; the collector count lives in the
/// bits above it.
const BIAS: u64 = 1;

/// SplitMix64 finalizer: cheap avalanche for slot and region hashing.
fn splitmix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 29;
    x
}

/// Rebias policy: after a revocation the bias stays off until
/// `rebias_threshold` reads have taken the slow path. The threshold is
/// adaptive — the deterministic (operation-counted, not timed) analogue of
/// BRAVO's `N × revocation-time` inhibition window:
///
/// * it starts at [`REBIAS_BASE`];
/// * a collection that *stalled* waiting certified readers out ratchets it
///   up to at least `REBIAS_BASE + stalls × REBIAS_STALL_MULT` (an
///   expensive revocation must be amortized by more slow reads before the
///   next one is enabled);
/// * a collection arriving while the bias is already down bumps it by one,
///   capped at [`REBIAS_MAX`] — evidence that writes outpace the rebias
///   policy. Under a write-heavy mix many such bumps land between
///   consecutive rebias events, so the threshold compounds and revocation
///   scans become vanishingly rare; under a read-heavy mix at most a
///   couple do, and the threshold stays at the base;
/// * each successful rebias halves it (floored at the base), so the bias
///   recovers quickly once reads dominate again.
///
/// Operation counts keep the policy reproducible under schedule
/// exploration.
const REBIAS_BASE: u64 = 2;
/// Per-stall multiplier of the rebias threshold (see [`REBIAS_BASE`]).
const REBIAS_STALL_MULT: u64 = 4;
/// Upper bound of the rebias threshold (see [`REBIAS_BASE`]): caps how
/// long a read-heavy phase pays centralized costs before the first rebias
/// after a long write-heavy phase.
const REBIAS_MAX: u64 = 4096;

/// BRAVO-style distributed reader indicator.
///
/// Reader fast path (three shared-memory operations, all on lines no other
/// thread writes in steady state): load the bias word, CAS the private
/// slot, re-load the bias word. If the re-check still sees the
/// bias, the read is certified — no writer check, no centralized counter.
///
/// Writer path: [`begin_collect`](ReaderIndicator::begin_collect) clears
/// the bias and bumps the collector count in one RMW; the scan then visits
/// this indicator's region of the global table (sized for its thread
/// count — see [`BravoIndicator::sized`]) filtering on its id. The packed
/// bias+collectors word closes the rebias-during-scan race: a reader can
/// only re-enable the bias with a CAS from the all-zero state, which fails
/// while any collector is registered.
pub struct BravoIndicator {
    /// This instance's nonzero id (the high half of its slot values).
    id: u64,
    /// First slot of this instance's region of the global table.
    base: usize,
    /// Region size minus one (region sizes are powers of two).
    mask: usize,
    /// Packed `collectors << 1 | bias`.
    state: AtomicU64,
    /// Slow-path reads since the last revocation (rebias policy input).
    slow_reads: AtomicU64,
    /// Current rebias threshold (rebias policy output).
    rebias_threshold: AtomicU64,
}

impl BravoIndicator {
    /// Creates a biased indicator with a fresh id, hashing over the whole
    /// global table (equivalent to `sized(TABLE_SLOTS)`).
    #[expect(clippy::new_without_default)]
    pub fn new() -> Self {
        Self::sized(TABLE_SLOTS)
    }

    /// Creates a biased indicator whose readers occupy a region of the
    /// global table sized for `max_threads` (rounded up to a power of
    /// two). Slots are dense by thread id within the region — no
    /// intra-indicator collisions, no hash on the publish path — and a
    /// revocation scan visits only this region, so its cost is
    /// `O(max_threads)`, not `O(TABLE_SLOTS)` — the bound the rebias
    /// policy amortizes against. The region's *placement* is hashed from
    /// the instance id; distinct indicators may overlap, which at worst
    /// declines a colliding publish.
    pub fn sized(max_threads: usize) -> Self {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
        let region = max_threads.max(1).next_power_of_two().min(TABLE_SLOTS);
        // Region-aligned base so `base | (tid & mask)` stays in range.
        let base = (splitmix(id) as usize) & (TABLE_SLOTS - 1) & !(region - 1);
        BravoIndicator {
            id,
            base,
            mask: region - 1,
            state: AtomicU64::new(BIAS),
            slow_reads: AtomicU64::new(0),
            rebias_threshold: AtomicU64::new(REBIAS_BASE),
        }
    }

    /// This thread's slot index in the global table: dense by thread id.
    /// The mask only matters for a `tid` beyond `max_threads`, which
    /// degrades to a collision (declined publish), never an out-of-range
    /// index.
    fn slot_of(&self, tid: usize) -> usize {
        self.base | (tid & self.mask)
    }

    /// The packed value this `(indicator, tid)` pair publishes.
    fn slot_value(&self, tid: usize) -> u64 {
        (self.id << 32) | (tid as u64 + 1)
    }

    /// A collection arrived while the bias was already down: writes are
    /// outpacing the rebias policy, so defer the next rebias by one more
    /// slow read (see [`REBIAS_BASE`]). Plain load+store: a lost update
    /// under a race only under-counts a heuristic.
    fn defer_rebias(&self) {
        let t = self.rebias_threshold.load(Ordering::Relaxed);
        if t < REBIAS_MAX {
            self.rebias_threshold.store(t + 1, Ordering::Relaxed);
        }
    }
}

impl ReaderIndicator for BravoIndicator {
    fn kind(&self) -> IndicatorKind {
        IndicatorKind::Bravo
    }

    #[inline]
    fn publish(&self, tid: usize) -> Publish {
        // Advisory pre-check: unbiased means the CAS would be wasted work.
        // No yield point of its own — the races that matter interleave
        // around the slot CAS and the certify re-check below.
        if self.state.load(Ordering::Relaxed) & BIAS == 0 {
            return Publish::Declined;
        }
        let slot = self.slot_of(tid);
        // No yield point before the CAS: a revocation interleaved here is
        // observationally the same as one interleaved before the advisory
        // pre-check (decline) or before the re-check below (withdraw),
        // both of which the schedule suites explore.
        if TABLE[slot]
            .0
            .compare_exchange(0, self.slot_value(tid), Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
        {
            // Hash collision with a live reader (possibly of another
            // indicator): decline rather than probe.
            return Publish::Declined;
        }
        sched::step();
        // The load-bearing re-check (enter-vs-scan dichotomy on the bias
        // word): seeing the bias set here orders this publication before
        // any collector's scan. Machine-checked by `wmm::proto`'s
        // `rind_bias_revocation` litmus: the certified-but-unseen outcome
        // is unreachable at these strengths, and every one-notch
        // weakening is killed with a seed.
        if self.state.load(Ordering::SeqCst) & BIAS != 0 {
            return Publish::Certified(slot as u32);
        }
        // Revoked between the pre-check and here: withdraw and go slow.
        TABLE[slot].0.store(0, Ordering::Release);
        Publish::Declined
    }

    #[inline]
    fn retire(&self, tid: usize, slot: u32) {
        // No yield point of its own: the reader-holds-slot-while-writer-
        // scans window is explored via the yield points inside the
        // critical section's reads and the collector's `vacated` loop.
        debug_assert_eq!(
            TABLE[slot as usize].0.load(Ordering::Relaxed),
            self.slot_value(tid),
            "retire of a slot this reader does not hold"
        );
        TABLE[slot as usize].0.store(0, Ordering::Release);
    }

    fn begin_collect(&self) -> Revocation {
        sched::step();
        // Register as a collector first: a non-zero count blocks the
        // rebias CAS (which requires the all-zero state), so the bias
        // cannot come back up mid-collection. In the write-heavy steady
        // state the bias is already clear and this is the only RMW.
        let old = self.state.fetch_add(2, Ordering::SeqCst);
        let revoked = old & BIAS != 0;
        if revoked {
            sched::step();
            // The revocation proper. A reader whose certify re-check
            // (SeqCst) precedes this clear is certified — and our scan
            // below that clear must see its slot (single total order). A
            // concurrent co-collector may observe `revoked` too; both
            // then clear (idempotent) and both scan.
            self.state.fetch_and(!BIAS, Ordering::SeqCst);
        }
        if !revoked {
            self.defer_rebias();
        }
        // Skipping the scan is sound only when the bias was already clear
        // AND no other collector was registered: the previous collection
        // then finished completely (its end_collect dropped the count to
        // zero) having waited out every certified reader, and with the
        // bias clear ever since, no new reader can have certified. A live
        // co-collector, in contrast, may still be waiting out a certified
        // reader that predates *both* revocations — we must see it too.
        Revocation {
            revoked,
            must_scan: revoked || (old >> 1) != 0,
        }
    }

    fn revoke_serialized(&self) -> Revocation {
        // Caller contract (see the trait doc): collections are serialized
        // by an external writer lock, and rebias attempts are gated so
        // the caller's reader-drain protocol flushes any that race this
        // collection before the caller's re-call of this method.
        if self.state.load(Ordering::SeqCst) & BIAS == 0 {
            // Bias already down and — by the contract — no rebias can
            // have survived the previous serialized collection, so no
            // certified reader is live: skip the scan entirely. This is
            // the write-heavy steady state, and it costs one load.
            self.defer_rebias();
            return Revocation {
                revoked: false,
                must_scan: false,
            };
        }
        sched::step();
        // The revocation proper, as in `begin_collect`: a reader whose
        // certify re-check (SeqCst) precedes this clear is certified, and
        // the caller's scan after this clear must see its slot (writer
        // side of the `rind_bias_revocation` litmus in `wmm::proto`).
        self.state.fetch_and(!BIAS, Ordering::SeqCst);
        Revocation {
            revoked: true,
            must_scan: true,
        }
    }

    fn end_collect(&self) {
        sched::step();
        // The bias bit is zero for the whole collection (rebias CASes from
        // the all-zero state only), so decrementing the packed count never
        // borrows into the bias bit.
        self.state.fetch_sub(2, Ordering::SeqCst);
    }

    fn collect(&self, rev: &Revocation, each: &mut dyn FnMut(u32, usize)) {
        if !rev.must_scan {
            return;
        }
        sched::step();
        // Only this instance's region can hold its publications (`slot_of`
        // masks into it), so the scan is O(region), not O(TABLE_SLOTS).
        // The slot loads are SeqCst so a publication whose certify
        // re-check saw the bias is visible here — the scan side of the
        // `rind_bias_revocation` litmus in `wmm::proto`.
        for (i, slot) in TABLE.iter().enumerate().skip(self.base).take(self.mask + 1) {
            let v = slot.0.load(Ordering::SeqCst);
            if v != 0 && v >> 32 == self.id {
                sched::step();
                each(i as u32, (v & 0xFFFF_FFFF) as usize - 1);
            }
        }
    }

    fn vacated(&self, slot: u32, tid: usize) -> bool {
        sched::step();
        TABLE[slot as usize].0.load(Ordering::SeqCst) != self.slot_value(tid)
    }

    #[inline]
    fn note_slow_read(&self) {
        if self.note_slow_read_deferred() {
            self.try_rebias();
        }
    }

    #[inline]
    fn note_slow_read_deferred(&self) -> bool {
        if self.state.load(Ordering::Relaxed) & BIAS != 0 {
            return false;
        }
        let n = self.slow_reads.fetch_add(1, Ordering::Relaxed) + 1;
        n >= self.rebias_threshold.load(Ordering::Relaxed)
    }

    fn try_rebias(&self) {
        sched::step();
        // Rebias only from the fully idle state: bias clear, zero
        // collectors. Failure just means a collector is live (or another
        // reader already rebias-ed) — try again after more slow reads.
        if self
            .state
            .compare_exchange(0, BIAS, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
        {
            self.slow_reads.store(0, Ordering::Relaxed);
            // Decay: each successful rebias halves the threshold (floored
            // at the base), so a one-off expensive collection does not
            // keep the bias suppressed forever once reads flow again.
            let t = self.rebias_threshold.load(Ordering::Relaxed);
            self.rebias_threshold
                .store((t / 2).max(REBIAS_BASE), Ordering::Relaxed);
        }
    }

    fn note_collect_cost(&self, stalls: u64) {
        // Ratchet, don't overwrite: most collections are cheap (the scan
        // was skipped, zero stalls) and must not erase what an expensive
        // one taught us. The rebias decay above is the only way down.
        // Checked with a plain load first so the common no-op costs no
        // RMW on the write path.
        let want = REBIAS_BASE + stalls.saturating_mul(REBIAS_STALL_MULT);
        if want > self.rebias_threshold.load(Ordering::Relaxed) {
            self.rebias_threshold.fetch_max(want, Ordering::Relaxed);
        }
    }

    fn bias_enabled(&self) -> bool {
        self.state.load(Ordering::Relaxed) & BIAS != 0
    }
}

// ---------------------------------------------------------------------------
// Cloned indicator
// ---------------------------------------------------------------------------

/// Per-thread cloned reader slots: one padded flag per thread, owned by
/// this instance. Readers always publish and must still run their own
/// writer check; writers always scan all `max_threads` slots. No bias, no
/// revocation — the comparison point showing what the bias buys (a
/// certified fast path) and what it costs (revocation scans).
pub struct ClonedIndicator {
    slots: Box<[PaddedSlot]>,
}

impl ClonedIndicator {
    /// Creates an indicator with one slot per thread id below
    /// `max_threads`.
    pub fn new(max_threads: usize) -> Self {
        ClonedIndicator {
            slots: (0..max_threads)
                .map(|_| PaddedSlot(AtomicU64::new(0)))
                .collect(),
        }
    }
}

impl ReaderIndicator for ClonedIndicator {
    fn kind(&self) -> IndicatorKind {
        IndicatorKind::Cloned
    }

    #[inline]
    fn publish(&self, tid: usize) -> Publish {
        sched::step();
        // SeqCst store: the Dekker half of publish-then-check-writer
        // against the writer's set-writer-then-scan.
        self.slots[tid].0.store(1, Ordering::SeqCst);
        Publish::Published(tid as u32)
    }

    #[inline]
    fn retire(&self, tid: usize, slot: u32) {
        debug_assert_eq!(tid as u32, slot);
        sched::step();
        self.slots[tid].0.store(0, Ordering::Release);
    }

    fn begin_collect(&self) -> Revocation {
        Revocation {
            revoked: false,
            must_scan: true,
        }
    }

    fn end_collect(&self) {}

    fn collect(&self, rev: &Revocation, each: &mut dyn FnMut(u32, usize)) {
        if !rev.must_scan {
            return;
        }
        for (tid, slot) in self.slots.iter().enumerate() {
            sched::step();
            if slot.0.load(Ordering::SeqCst) != 0 {
                each(tid as u32, tid);
            }
        }
    }

    fn vacated(&self, _slot: u32, tid: usize) -> bool {
        sched::step();
        self.slots[tid].0.load(Ordering::SeqCst) == 0
    }

    fn note_slow_read(&self) {}

    fn revoke_serialized(&self) -> Revocation {
        // No bias to revoke, but cloned slots are always live: a
        // serialized collector must still scan them all.
        Revocation {
            revoked: false,
            must_scan: true,
        }
    }

    fn note_collect_cost(&self, _stalls: u64) {}

    fn bias_enabled(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Publishes with retries: the global table is shared by every test in
    /// the process, so an unlucky transient collision with another test's
    /// live reader may decline a publish that this test needs to succeed.
    fn publish_certified(ind: &BravoIndicator, tid: usize) -> u32 {
        let mut bo = sched::Backoff::new();
        for _ in 0..1_000_000 {
            match ind.publish(tid) {
                Publish::Certified(slot) => return slot,
                Publish::Published(_) => unreachable!("bravo never returns Published"),
                Publish::Declined => {
                    assert!(
                        ind.bias_enabled(),
                        "declined with bias set and no collision"
                    );
                    bo.snooze();
                }
            }
        }
        panic!("slot collision never cleared");
    }

    #[test]
    fn central_always_declines() {
        let ind = CentralIndicator::new();
        assert_eq!(ind.publish(0), Publish::Declined);
        let rev = ind.begin_collect();
        assert!(!rev.revoked);
        assert!(!rev.must_scan);
        assert_eq!(collect_wait(&ind, &rev, None), 0);
        ind.end_collect();
    }

    #[test]
    fn bravo_publish_certifies_while_biased() {
        let ind = BravoIndicator::new();
        assert!(ind.bias_enabled());
        let slot = publish_certified(&ind, 3);
        // The collector must see the published reader.
        let rev = ind.begin_collect();
        assert!(rev.revoked);
        assert!(rev.must_scan);
        let mut seen = Vec::new();
        ind.collect(&rev, &mut |s, tid| seen.push((s, tid)));
        assert_eq!(seen, vec![(slot, 3)]);
        assert!(!ind.vacated(slot, 3));
        ind.retire(3, slot);
        assert!(ind.vacated(slot, 3));
        ind.end_collect();
    }

    #[test]
    fn bravo_declines_after_revocation() {
        let ind = BravoIndicator::new();
        let rev = ind.begin_collect();
        assert!(rev.revoked);
        // Bias is down and a collector is live: no publication possible.
        assert_eq!(ind.publish(1), Publish::Declined);
        ind.end_collect();
        // Still down after the collection — only the rebias policy
        // re-enables it.
        assert_eq!(ind.publish(1), Publish::Declined);
    }

    #[test]
    fn bravo_second_collector_skips_empty_scan_only_when_alone() {
        let ind = BravoIndicator::new();
        let first = ind.begin_collect();
        assert!(first.revoked);
        // A second collector overlapping the first must scan (the first
        // may still be waiting out a certified reader)...
        let second = ind.begin_collect();
        assert!(!second.revoked);
        assert!(second.must_scan);
        ind.end_collect();
        ind.end_collect();
        // ...but once all collectors drained and the bias stayed down, the
        // next collection is provably empty.
        let third = ind.begin_collect();
        assert!(!third.revoked);
        assert!(!third.must_scan);
        ind.end_collect();
    }

    #[test]
    fn bravo_rebias_policy_counts_slow_reads() {
        let ind = BravoIndicator::new();
        let rev = ind.begin_collect();
        collect_wait(&ind, &rev, None);
        ind.end_collect();
        assert!(!ind.bias_enabled());
        // An idle collection saw zero stalls: threshold is REBIAS_BASE.
        for _ in 0..REBIAS_BASE - 1 {
            ind.note_slow_read();
            assert!(!ind.bias_enabled());
        }
        ind.note_slow_read();
        assert!(ind.bias_enabled(), "threshold reached, bias restored");
        // Reads certify again.
        let slot = publish_certified(&ind, 0);
        ind.retire(0, slot);
    }

    #[test]
    fn bravo_rebias_blocked_while_collector_live() {
        let ind = BravoIndicator::new();
        let rev = ind.begin_collect();
        collect_wait(&ind, &rev, None);
        // Collector still registered: no amount of slow reads may rebias.
        for _ in 0..REBIAS_BASE * 4 {
            ind.note_slow_read();
        }
        assert!(!ind.bias_enabled());
        ind.end_collect();
        ind.note_slow_read();
        assert!(ind.bias_enabled());
    }

    #[test]
    fn bravo_collect_cost_raises_threshold() {
        let ind = BravoIndicator::new();
        ind.note_collect_cost(10);
        let raised = REBIAS_BASE + 10 * REBIAS_STALL_MULT;
        assert_eq!(ind.rebias_threshold.load(Ordering::Relaxed), raised);
        // A later cheap collection must not erase the lesson: the
        // threshold ratchets up and only rebias decays it.
        ind.note_collect_cost(0);
        assert_eq!(ind.rebias_threshold.load(Ordering::Relaxed), raised);
    }

    #[test]
    fn bravo_rebias_halves_threshold() {
        let ind = BravoIndicator::new();
        ind.note_collect_cost(10);
        let raised = REBIAS_BASE + 10 * REBIAS_STALL_MULT;
        // Knock the bias down, then feed slow reads until rebias fires.
        let rev = ind.begin_collect();
        assert!(rev.revoked);
        ind.end_collect();
        while !ind.bias_enabled() {
            ind.note_slow_read();
        }
        assert_eq!(ind.rebias_threshold.load(Ordering::Relaxed), raised / 2);
        // Repeated rebias cycles decay all the way back to the base; the
        // threshold halves per cycle, so 64 cycles is far more than enough.
        for _ in 0..64 {
            if ind.rebias_threshold.load(Ordering::Relaxed) == REBIAS_BASE {
                break;
            }
            let rev = ind.begin_collect();
            assert!(rev.revoked);
            ind.end_collect();
            while !ind.bias_enabled() {
                ind.note_slow_read();
            }
        }
        assert_eq!(ind.rebias_threshold.load(Ordering::Relaxed), REBIAS_BASE);
    }

    #[test]
    fn cloned_publishes_and_writer_scans_all() {
        let ind = ClonedIndicator::new(4);
        let Publish::Published(slot) = ind.publish(2) else {
            panic!("cloned must always publish");
        };
        assert_eq!(slot, 2);
        let rev = ind.begin_collect();
        assert!(rev.must_scan);
        let mut seen = Vec::new();
        ind.collect(&rev, &mut |s, tid| seen.push((s, tid)));
        assert_eq!(seen, vec![(2, 2)]);
        ind.retire(2, slot);
        assert!(ind.vacated(slot, 2));
        ind.end_collect();
    }

    #[test]
    fn collect_wait_skips_own_slot() {
        let ind = ClonedIndicator::new(2);
        let Publish::Published(_) = ind.publish(1) else {
            panic!()
        };
        let rev = ind.begin_collect();
        // Without skip this would spin forever on tid 1's live slot.
        assert_eq!(collect_wait(&ind, &rev, Some(1)), 0);
        ind.end_collect();
        ind.retire(1, 1);
    }

    #[test]
    fn build_matches_kind() {
        for kind in [
            IndicatorKind::Central,
            IndicatorKind::Bravo,
            IndicatorKind::Cloned,
        ] {
            assert_eq!(build(kind, 8).kind(), kind);
            assert_eq!(IndicatorKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(IndicatorKind::parse("nope"), None);
    }

    #[test]
    fn bravo_ids_are_distinct_and_slots_disjoint_in_value() {
        let a = BravoIndicator::new();
        let b = BravoIndicator::new();
        assert_ne!(a.id, b.id);
        // Even on a hash collision the packed values differ, so a scan
        // never mistakes b's reader for a's.
        assert_ne!(a.slot_value(0), b.slot_value(0));
    }
}
