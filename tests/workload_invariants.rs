//! Application-level invariants under concurrency: each workload defines
//! a property that any correct synchronization scheme must preserve, and
//! we hammer it with readers and writers under the schemes that exercise
//! the most speculation (RW-LE OPT/PES and HLE).

use std::sync::Arc;

use hrwle::htm::{HtmConfig, HtmRuntime};
use hrwle::simmem::{SharedMem, SimAlloc};
use hrwle::workloads::driver::run_threads;
use hrwle::workloads::kyoto::CacheDb;
use hrwle::workloads::stmbench7::Bench7;
use hrwle::workloads::tpcc::{Tpcc, TpccScale};
use hrwle::workloads::{Scheme, SchemeKind};

const SPECULATIVE_SCHEMES: [SchemeKind; 3] =
    [SchemeKind::RwLeOpt, SchemeKind::RwLePes, SchemeKind::Hle];

/// STMBench7: `swap_xy` must preserve each composite part's Σ(x+y); a
/// reader's checksum must always equal the initial one.
#[test]
fn stmbench7_swap_invariant_under_concurrency() {
    for scheme_kind in SPECULATIVE_SCHEMES {
        let mem = Arc::new(SharedMem::new_lines(16 * 1024));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(Arc::clone(&mem));
        let scheme = Scheme::build(scheme_kind, &alloc, 8).unwrap();
        let bench = Bench7::build(&alloc, 8, 40).unwrap();

        // Capture baseline checksums single-threadedly.
        let baseline: Vec<u64> = {
            let ctx = rt.register();
            let mut nt = ctx.non_tx();
            (0..8)
                .map(|c| bench.checksum_invariant(&mut nt, c).unwrap())
                .collect()
        };

        run_threads(&rt, 4, |t, ctx, st| {
            if t < 2 {
                for i in 0..80u64 {
                    let c = (t as u32 * 31 + i as u32) % 8;
                    scheme.write_cs(ctx, st, &mut |acc| bench.swap_xy(acc, c, i));
                }
            } else {
                for i in 0..160u64 {
                    let c = (i as u32) % 8;
                    let sum = scheme.read_cs(ctx, st, &mut |acc| bench.checksum_invariant(acc, c));
                    assert_eq!(
                        sum, baseline[c as usize],
                        "{scheme_kind:?}: composite {c} checksum drifted (torn swap)"
                    );
                }
            }
        });
    }
}

/// TPC-C: `payment` debits a customer exactly what it credits the
/// warehouse; per customer, `balance == -ytd_payment` at all times.
#[test]
fn tpcc_payment_conservation_under_concurrency() {
    for scheme_kind in SPECULATIVE_SCHEMES {
        let scale = TpccScale {
            warehouses: 1,
            customers_per_district: 4,
            items: 64,
        };
        let lines = Tpcc::lines_needed(&scale) + 2048;
        let mem = Arc::new(SharedMem::new_lines(lines as u32));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(Arc::clone(&mem));
        let scheme = Scheme::build(scheme_kind, &alloc, 8).unwrap();
        let db = Tpcc::build(&alloc, scale).unwrap();

        run_threads(&rt, 4, |t, ctx, st| {
            if t < 2 {
                for i in 0..100u64 {
                    let d = (i % 10) as u32;
                    let c = (i % 4) as u32;
                    let amount = i % 97 + 1;
                    scheme.write_cs(ctx, st, &mut |acc| db.payment(acc, 0, d, c, amount));
                }
            } else {
                for i in 0..200u64 {
                    let d = (i % 10) as u32;
                    let c = (i % 4) as u32;
                    // order_status returns (balance, qty); check the
                    // conservation pair through a dedicated read CS.
                    scheme.read_cs(ctx, st, &mut |acc| {
                        let (balance, _) = db.order_status(acc, 0, d, c)?;
                        // balance is 0 - ytd_payment in wrapping arithmetic;
                        // recompute ytd via a second read of the pair is
                        // not exposed, so check wrap-consistency instead:
                        // balances only ever decrease (wrapping), so the
                        // high bit pattern must be 0 or a wrapped debit.
                        let as_debit = 0u64.wrapping_sub(balance);
                        assert!(
                            as_debit < 1_000_000,
                            "{scheme_kind:?}: implausible balance {balance}"
                        );
                        Ok(())
                    });
                }
            }
        });

        // Quiescent check: every committed payment debited some customer,
        // and all 200 write operations completed exactly once, so the
        // total debit equals the deterministic sum of the amounts above.
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let mut debit_sum = 0u64;
        for d in 0..10 {
            for c in 0..4 {
                let (balance, _) = db.order_status(&mut nt, 0, d, c).unwrap();
                debit_sum = debit_sum.wrapping_add(0u64.wrapping_sub(balance));
            }
        }
        let expected: u64 = 2 * (0..100u64).map(|i| i % 97 + 1).sum::<u64>();
        assert_eq!(
            debit_sum, expected,
            "lost or duplicated payments under {scheme_kind:?}"
        );
    }
}

/// Kyoto: values always equal their key; concurrent get/set/remove plus
/// whole-DB write operations must never surface a foreign value.
#[test]
fn kyoto_value_integrity_under_concurrency() {
    for scheme_kind in SPECULATIVE_SCHEMES {
        let mem = Arc::new(SharedMem::new_lines(32 * 1024));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(Arc::clone(&mem));
        let scheme = Scheme::build(scheme_kind, &alloc, 8).unwrap();
        let db = CacheDb::create(&alloc, 4, 16).unwrap();
        {
            let ctx = rt.register();
            let mut nt = ctx.non_tx();
            for k in 0..256u64 {
                let node = db.make_node(&alloc, k, k).unwrap();
                db.set(&mut nt, node).unwrap();
            }
        }

        run_threads(&rt, 4, |t, ctx, st| {
            if t == 0 {
                // Whole-DB maintenance under the outer write lock.
                for _ in 0..30 {
                    scheme.write_cs(ctx, st, &mut |acc| db.touch_all_slots(acc));
                }
            } else if t == 1 {
                let alloc = &alloc;
                for i in 0..120u64 {
                    let k = (i * 13) % 512;
                    if i % 3 == 0 {
                        let _ = scheme.read_cs(ctx, st, &mut |acc| db.remove(acc, k));
                    } else {
                        let node = db.make_node(alloc, k, k).unwrap();
                        let _ = scheme.read_cs(ctx, st, &mut |acc| db.set(acc, node));
                    }
                }
            } else {
                for i in 0..240u64 {
                    let k = (i * 7 + t as u64) % 512;
                    let v = scheme.read_cs(ctx, st, &mut |acc| db.get(acc, k));
                    if let Some(v) = v {
                        assert_eq!(v, k, "{scheme_kind:?}: key {k} maps to foreign value {v}");
                    }
                }
            }
        });

        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let n = db.count(&mut nt).unwrap();
        assert!(
            n >= 1,
            "database emptied unexpectedly under {scheme_kind:?}"
        );
    }
}
