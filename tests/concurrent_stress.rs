//! Concurrency stress tests: invariants that must hold under every RW-LE
//! variant when readers and writers hammer shared structures.

use std::sync::Arc;

use hrwle::htm::{HtmConfig, HtmRuntime};
use hrwle::rwle::basic::BasicRwLe;
use hrwle::rwle::{RwLe, RwLeConfig};
use hrwle::simmem::{SharedMem, SimAlloc};
use hrwle::workloads::driver::run_threads;

/// Writers move value between two accounts; the total is invariant.
/// Readers must always observe the exact total — the canonical torn-read
/// detector for delayed-commit schemes.
fn bank_transfer_invariant(cfg: RwLeConfig, htm_cfg: HtmConfig) {
    const TOTAL: u64 = 1_000;
    const WRITERS: usize = 2;
    const READERS: usize = 3;
    const OPS: u64 = 150;

    let mem = Arc::new(SharedMem::new_lines(512));
    let rt = HtmRuntime::new(Arc::clone(&mem), htm_cfg);
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let rwle = Arc::new(RwLe::new(&alloc, WRITERS + READERS + 1, cfg).unwrap());
    // Accounts on distinct cache lines.
    let a = alloc.alloc(1).unwrap();
    let b = alloc.alloc(1).unwrap();
    mem.store(a, TOTAL);

    run_threads(&rt, WRITERS + READERS, |t, ctx, st| {
        if t < WRITERS {
            for i in 0..OPS {
                let amount = (t as u64 * 13 + i) % 7 + 1;
                rwle.write_cs(ctx, st, &mut |acc| {
                    let va = acc.read(a)?;
                    let vb = acc.read(b)?;
                    if va >= amount {
                        acc.write(a, va - amount)?;
                        acc.write(b, vb + amount)?;
                    } else {
                        acc.write(b, vb - amount)?;
                        acc.write(a, va + amount)?;
                    }
                    Ok(())
                });
            }
        } else {
            for _ in 0..OPS * 2 {
                let total = rwle.read_cs(ctx, st, &mut |acc| Ok(acc.read(a)? + acc.read(b)?));
                assert_eq!(total, TOTAL, "reader saw money created/destroyed");
            }
        }
    });
    assert_eq!(mem.load(a) + mem.load(b), TOTAL);
}

#[test]
fn bank_invariant_opt() {
    bank_transfer_invariant(RwLeConfig::opt(), HtmConfig::default());
}

#[test]
fn bank_invariant_pes() {
    bank_transfer_invariant(RwLeConfig::pes(), HtmConfig::default());
}

#[test]
fn bank_invariant_htm_only() {
    bank_transfer_invariant(RwLeConfig::htm_only(), HtmConfig::default());
}

#[test]
fn bank_invariant_fair() {
    bank_transfer_invariant(RwLeConfig::fair_htm_only(), HtmConfig::default());
}

#[test]
fn bank_invariant_no_optimizations() {
    bank_transfer_invariant(
        RwLeConfig {
            split_locks: false,
            single_pass_quiesce: false,
            fast_read_entry: false,
            ..RwLeConfig::opt()
        },
        HtmConfig::default(),
    );
}

#[test]
fn bank_invariant_under_interrupt_pressure() {
    // Transient interrupts force heavy use of the fallback paths.
    bank_transfer_invariant(
        RwLeConfig::opt(),
        HtmConfig::default().with_page_faults(0.02),
    );
}

#[test]
fn bank_invariant_with_tiny_capacity() {
    // Write capacity of 1 line pushes everything through ROT/NS paths.
    bank_transfer_invariant(
        RwLeConfig::opt(),
        HtmConfig {
            htm_read_capacity: 2,
            htm_write_capacity: 1,
            rot_write_capacity: 1,
            ..HtmConfig::default()
        },
    );
}

#[test]
fn basic_algorithm_bank_invariant() {
    const TOTAL: u64 = 500;
    let mem = Arc::new(SharedMem::new_lines(512));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let lock = Arc::new(BasicRwLe::new(&alloc, 8).unwrap());
    let a = alloc.alloc(1).unwrap();
    let b = alloc.alloc(1).unwrap();
    mem.store(a, TOTAL);

    run_threads(&rt, 4, |t, ctx, st| {
        if t < 2 {
            for i in 0..100u64 {
                let amount = i % 5 + 1;
                lock.write_cs(ctx, st, &mut |acc| {
                    let va = acc.read(a)?;
                    let vb = acc.read(b)?;
                    if va >= amount {
                        acc.write(a, va - amount)?;
                        acc.write(b, vb + amount)?;
                    }
                    Ok(())
                });
            }
        } else {
            for _ in 0..200 {
                let total = lock.read_cs(ctx, st, &mut |acc| Ok(acc.read(a)? + acc.read(b)?));
                assert_eq!(total, TOTAL);
            }
        }
    });
    assert_eq!(mem.load(a) + mem.load(b), TOTAL);
}

/// Many threads, per-thread counters plus a shared counter: written totals
/// must add up exactly under the full PATH policy.
#[test]
fn sum_conservation_with_many_threads() {
    const THREADS: usize = 8;
    const OPS: u64 = 120;
    let mem = Arc::new(SharedMem::new_lines(1024));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let rwle = Arc::new(RwLe::new(&alloc, THREADS + 1, RwLeConfig::opt()).unwrap());
    let shared = alloc.alloc(1).unwrap();
    let per_thread = alloc.alloc(8 * THREADS as u32).unwrap();

    run_threads(&rt, THREADS, |t, ctx, st| {
        let mine = per_thread.offset(8 * t as u32);
        for _ in 0..OPS {
            rwle.write_cs(ctx, st, &mut |acc| {
                let v = acc.read(shared)?;
                acc.write(shared, v + 1)?;
                let m = acc.read(mine)?;
                acc.write(mine, m + 1)?;
                Ok(())
            });
        }
    });
    assert_eq!(mem.load(shared), THREADS as u64 * OPS);
    for t in 0..THREADS {
        assert_eq!(mem.load(per_thread.offset(8 * t as u32)), OPS);
    }
}
