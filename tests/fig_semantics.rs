//! Deterministic reproductions of the paper's Figures 1 and 2 — the two
//! interleavings that motivate RW-LE's design — driven through the public
//! API of the umbrella crate.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hrwle::htm::{AbortCause, HtmConfig, HtmRuntime, TxMode};
use hrwle::rwle::{RwLe, RwLeConfig};
use hrwle::sched;
use hrwle::simmem::{SharedMem, SimAlloc};
use hrwle::stats::ThreadStats;

fn setup() -> (Arc<HtmRuntime>, SimAlloc) {
    let mem = Arc::new(SharedMem::new_lines(256));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
    let alloc = SimAlloc::new(mem);
    (rt, alloc)
}

/// Figure 1: a writer whose critical section falls entirely between two
/// reads of an overlapping reader must delay its commit until the reader
/// finishes — otherwise the reader observes a mix of old and new values.
///
/// Explored as deterministic seeded schedules: each seed pins one
/// interleaving of the reader's `r(x) .. r(y)` against the writer's
/// `w-lock .. w(x) w(y) .. w-unlock`, so the quiescence window is driven
/// by the scheduler rather than by a sleep. A failure prints the
/// reproducing seed.
#[test]
fn fig1_writer_commit_is_delayed_past_overlapping_readers() {
    sched::explore("fig1", 0..200, |seed| {
        let (rt, alloc) = setup();
        let rwle = Arc::new(RwLe::new(&alloc, 8, RwLeConfig::opt()).unwrap());
        // x and y on different cache lines.
        let x = alloc.alloc(1).unwrap();
        let y = alloc.alloc(1).unwrap();
        rt.mem().store(x, 10);
        rt.mem().store(y, 10);

        let reader_in = Arc::new(AtomicBool::new(false));
        let reader_exited = Arc::new(AtomicBool::new(false));

        let mut s = sched::Scheduler::new(seed);
        {
            let rt = Arc::clone(&rt);
            let rwle = Arc::clone(&rwle);
            let reader_in = Arc::clone(&reader_in);
            let reader_exited = Arc::clone(&reader_exited);
            s.spawn(move || {
                let reader_ctx = rt.register();
                let reader_tid = reader_ctx.slot();
                // Reader enters its critical section and reads x.
                rwle.epochs().enter(reader_tid);
                assert_eq!(reader_ctx.read_nt(x), 10);
                reader_in.store(true, Ordering::SeqCst);
                sched::yield_point();
                // The reader's second read — r(y) in the figure — must
                // still see the old value on EVERY schedule: the writer
                // is parked in quiescence until the reader exits.
                let ry = reader_ctx.read_nt(y);
                assert_eq!(ry, 10, "reader saw a mixed snapshot (x old, y new)");
                reader_exited.store(true, Ordering::SeqCst);
                rwle.epochs().exit(reader_tid);
            });
        }
        {
            let rt = Arc::clone(&rt);
            let rwle = Arc::clone(&rwle);
            let reader_exited = Arc::clone(&reader_exited);
            s.spawn(move || {
                // w-lock .. w(x) w(y) .. w-unlock, entirely within the
                // reader's critical section.
                while !reader_in.load(Ordering::SeqCst) {
                    sched::yield_point();
                }
                let mut writer_ctx = rt.register();
                let mut st = ThreadStats::new();
                rwle.write_cs(&mut writer_ctx, &mut st, &mut |acc| {
                    acc.write(x, 20)?;
                    acc.write(y, 20)?;
                    Ok(())
                });
                // The delayed commit must not complete before the reader
                // left.
                assert!(
                    reader_exited.load(Ordering::SeqCst),
                    "writer committed while the overlapping reader was active"
                );
            });
        }
        s.run();

        // After the writer drained the reader, both updates are visible.
        assert_eq!(rt.mem().load(x), 20);
        assert_eq!(rt.mem().load(y), 20);
    });
}

/// One real-thread preemptive run of the Figure 1 scenario, as a smoke
/// test alongside the schedule exploration above.
#[test]
fn fig1_real_threads_smoke() {
    let (rt, alloc) = setup();
    let rwle = Arc::new(RwLe::new(&alloc, 8, RwLeConfig::opt()).unwrap());
    let x = alloc.alloc(1).unwrap();
    let y = alloc.alloc(1).unwrap();
    rt.mem().store(x, 10);
    rt.mem().store(y, 10);

    let mut writer_ctx = rt.register();
    let reader_ctx = rt.register();
    let reader_tid = reader_ctx.slot();

    rwle.epochs().enter(reader_tid);
    assert_eq!(reader_ctx.read_nt(x), 10);

    let reader_exited = AtomicBool::new(false);
    std::thread::scope(|s| {
        let rwle2 = Arc::clone(&rwle);
        let reader_exited = &reader_exited;
        let writer = s.spawn(move || {
            let mut st = ThreadStats::new();
            rwle2.write_cs(&mut writer_ctx, &mut st, &mut |acc| {
                acc.write(x, 20)?;
                acc.write(y, 20)?;
                Ok(())
            });
            assert!(
                reader_exited.load(Ordering::SeqCst),
                "writer committed while the overlapping reader was active"
            );
        });

        // Give the writer time to reach its quiescence barrier.
        std::thread::sleep(std::time::Duration::from_millis(10));
        let ry = reader_ctx.read_nt(y);
        assert_eq!(ry, 10, "reader saw a mixed snapshot (x old, y new)");
        reader_exited.store(true, Ordering::SeqCst);
        rwle.epochs().exit(reader_tid);
        writer.join().unwrap();
    });

    assert_eq!(rt.mem().load(x), 20);
    assert_eq!(rt.mem().load(y), 20);
}

/// Figure 2: a *new* reader that starts during the writer's suspended
/// quiescence and touches a speculatively-written line aborts the writer
/// at resume.
#[test]
fn fig2_new_reader_aborts_suspended_writer() {
    let (rt, alloc) = setup();
    let rwle = Arc::new(RwLe::new(&alloc, 8, RwLeConfig::opt()).unwrap());
    let x = alloc.alloc(1).unwrap();
    rt.mem().store(x, 10);

    let mut writer_ctx = rt.register();
    let reader_ctx = rt.register();
    let reader_tid = reader_ctx.slot();

    // Drive the HTM write path by hand so the interleaving is exact.
    let mut tx = writer_ctx.begin(TxMode::Htm);
    tx.read(rwle.wlock_addr()).unwrap(); // eager lock subscription
    tx.write(x, 20).unwrap(); // w(x)
    tx.suspend(|_nt| {
        // Quiescence would find no readers. Now the Figure 2 reader
        // arrives and reads the speculatively-written location.
        rwle.epochs().enter(reader_tid);
        assert_eq!(reader_ctx.read_nt(x), 10, "speculative state leaked");
        rwle.epochs().exit(reader_tid);
    });
    // Resume + commit: the suspended speculation was killed.
    assert_eq!(tx.commit(), Err(AbortCause::ConflictNonTx));
    assert_eq!(rt.mem().load(x), 10, "aborted writer must leave no trace");
}

/// The complement of Figure 2: a new reader that touches *unrelated*
/// lines does not hurt the suspended writer.
#[test]
fn fig2_unrelated_reader_does_not_abort_writer() {
    let (rt, alloc) = setup();
    let rwle = Arc::new(RwLe::new(&alloc, 8, RwLeConfig::opt()).unwrap());
    let x = alloc.alloc(1).unwrap();
    let z = alloc.alloc(1).unwrap();

    let mut writer_ctx = rt.register();
    let reader_ctx = rt.register();
    let reader_tid = reader_ctx.slot();

    let mut tx = writer_ctx.begin(TxMode::Htm);
    tx.read(rwle.wlock_addr()).unwrap();
    tx.write(x, 20).unwrap();
    tx.suspend(|_nt| {
        rwle.epochs().enter(reader_tid);
        let _ = reader_ctx.read_nt(z); // disjoint line
        rwle.epochs().exit(reader_tid);
    });
    assert_eq!(tx.commit(), Ok(()));
    assert_eq!(rt.mem().load(x), 20);
}
