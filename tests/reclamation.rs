//! End-to-end epoch-based reclamation: removed hashmap nodes are retired
//! to an [`epoch::Reclaimer`] and recycled through the allocator once a
//! grace period has drained every uninstrumented reader.
//!
//! Safety argument for this configuration (no split lock words): epoch
//! clocks cover every uninstrumented reader; HTM writers' loads are
//! tracked, so a committing unlinker dooms any speculative traversal
//! through the unlinked node's predecessor before the unlink becomes
//! visible; ROT writers are serialized with all other writers by the
//! single lock word. Hence after one grace period nobody can hold a
//! retired pointer. (With the split-lock optimization, ROT and HTM write
//! *bodies* may overlap, so frees would additionally need to wait for a
//! ROT-lock turnover — which is why the benchmarks defer reclamation to
//! the end of the run instead.)

use std::sync::Arc;

use hrwle::epoch::Reclaimer;
use hrwle::htm::{HtmConfig, HtmRuntime};
use hrwle::rwle::{RwLe, RwLeConfig};
use hrwle::simmem::{Addr, SharedMem, SimAlloc};
use hrwle::stats::ThreadStats;
use hrwle::workloads::hashmap::{SimHashMap, NODE_WORDS};

#[test]
fn removed_nodes_are_recycled_safely() {
    const WRITERS: usize = 2;
    const READERS: usize = 2;
    const OPS: u64 = 400;
    const KEYS: u64 = 32;

    let mem = Arc::new(SharedMem::new_lines(64 * 1024));
    let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
    let alloc = SimAlloc::new(Arc::clone(&mem));
    let cfg = RwLeConfig {
        split_locks: false, // required for safe reclamation, see header
        ..RwLeConfig::pes()
    };
    let rwle = Arc::new(RwLe::new(&alloc, WRITERS + READERS, cfg).unwrap());
    let map = SimHashMap::create(&alloc, 4).unwrap();
    map.populate(&alloc, KEYS).unwrap();
    let reclaimer = Arc::new(Reclaimer::new());

    let baseline_live = alloc.stats().live_blocks;

    std::thread::scope(|s| {
        for _ in 0..WRITERS {
            let rt = Arc::clone(&rt);
            let rwle = Arc::clone(&rwle);
            let reclaimer = Arc::clone(&reclaimer);
            let (alloc, map) = (&alloc, &map);
            s.spawn(move || {
                let mut ctx = rt.register();
                let mut st = ThreadStats::new();
                let tid = ctx.slot();
                let mut spare: Option<Addr> = None;
                for i in 0..OPS {
                    let key = (i * 7 + tid as u64) % KEYS;
                    if i % 2 == 0 {
                        let node = match spare.take() {
                            Some(n) => {
                                rt.mem().store(n, key);
                                rt.mem().store(n.offset(1), key);
                                rt.mem().store(n.offset(2), Addr::NULL.to_word());
                                n
                            }
                            None => map.make_node(alloc, key, key).unwrap(),
                        };
                        if !rwle.write_cs(&mut ctx, &mut st, &mut |acc| map.insert(acc, node)) {
                            spare = Some(node);
                        }
                    } else {
                        let removed =
                            rwle.write_cs(&mut ctx, &mut st, &mut |acc| map.remove(acc, key));
                        if let Some(node) = removed {
                            // Retire; a grace period later it is freed and
                            // recycled by the allocator.
                            reclaimer.retire(node.to_word());
                        }
                    }
                    // Opportunistically free anything past its grace period.
                    for word in reclaimer.try_flush(rwle.epochs()) {
                        alloc.free_sized(Addr::from_word(word), NODE_WORDS);
                    }
                }
            });
        }
        for r in 0..READERS {
            let rt = Arc::clone(&rt);
            let rwle = Arc::clone(&rwle);
            let map = &map;
            s.spawn(move || {
                let mut ctx = rt.register();
                let mut st = ThreadStats::new();
                for i in 0..OPS * 2 {
                    let key = (i * 3 + r as u64) % KEYS;
                    let v = rwle.read_cs(&mut ctx, &mut st, &mut |acc| map.lookup(acc, key));
                    if let Some(v) = v {
                        assert_eq!(v, key, "reader observed a recycled/torn node");
                    }
                }
            });
        }
    });

    // Drain everything still pending; the allocator must balance.
    let ctx = rt.register();
    let _ = ctx; // (not strictly needed; drain only reads clocks)
    for word in reclaimer.drain(rwle.epochs(), None) {
        alloc.free_sized(Addr::from_word(word), NODE_WORDS);
    }
    assert_eq!(reclaimer.pending(), 0);

    // Every key present maps to itself and the structure is consistent.
    let ctx2 = rt.register();
    let mut nt = ctx2.non_tx();
    let len = map.len(&mut nt).unwrap();
    assert!(len <= KEYS);
    // live_blocks = initial population ± net inserts/removes; it must at
    // least never exceed what an unreclaimed run would hold.
    let live = alloc.stats().live_blocks;
    assert!(
        live <= baseline_live + WRITERS as u64 * 2,
        "reclamation failed to recycle nodes: live={live} baseline={baseline_live}"
    );
}
