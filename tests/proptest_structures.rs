//! Property-based tests: the simulated-memory data structures must match
//! reference models from `std::collections` under arbitrary operation
//! sequences.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use hrwle::htm::{HtmConfig, HtmRuntime};
use hrwle::simmem::{SharedMem, SimAlloc};
use hrwle::workloads::hashmap::SimHashMap;
use hrwle::workloads::kyoto::CacheDb;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    Lookup(u64),
}

fn op_strategy(key_space: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..key_space, any::<u64>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (0..key_space).prop_map(Op::Remove),
        (0..key_space).prop_map(Op::Lookup),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hashmap_matches_btreemap_model(
        ops in prop::collection::vec(op_strategy(64), 1..200),
        buckets in 1u32..8,
    ) {
        let mem = Arc::new(SharedMem::new_lines(16 * 1024));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let map = SimHashMap::create(&alloc, buckets).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let node = map.make_node(&alloc, k, v).unwrap();
                    let linked = map.insert(&mut nt, node).unwrap();
                    let was_new = model.insert(k, v).is_none();
                    prop_assert_eq!(linked, was_new);
                }
                Op::Remove(k) => {
                    let removed = map.remove(&mut nt, k).unwrap();
                    prop_assert_eq!(removed.is_some(), model.remove(&k).is_some());
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(map.lookup(&mut nt, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(map.len(&mut nt).unwrap(), model.len() as u64);
        for (&k, &v) in &model {
            prop_assert_eq!(map.lookup(&mut nt, k).unwrap(), Some(v));
        }
    }

    #[test]
    fn kyoto_bst_matches_btreemap_model(
        ops in prop::collection::vec(op_strategy(48), 1..150),
    ) {
        let mem = Arc::new(SharedMem::new_lines(16 * 1024));
        let rt = HtmRuntime::new(Arc::clone(&mem), HtmConfig::default());
        let alloc = SimAlloc::new(mem);
        let db = CacheDb::create(&alloc, 3, 4).unwrap();
        let ctx = rt.register();
        let mut nt = ctx.non_tx();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();

        for op in &ops {
            match *op {
                Op::Insert(k, v) => {
                    let node = db.make_node(&alloc, k, v).unwrap();
                    let linked = db.set(&mut nt, node).unwrap();
                    let was_new = model.insert(k, v).is_none();
                    prop_assert_eq!(linked, was_new);
                }
                Op::Remove(k) => {
                    let removed = db.remove(&mut nt, k).unwrap();
                    prop_assert_eq!(removed.is_some(), model.remove(&k).is_some());
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(db.get(&mut nt, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        prop_assert_eq!(db.count(&mut nt).unwrap(), model.len() as u64);
        for (&k, &v) in &model {
            prop_assert_eq!(db.get(&mut nt, k).unwrap(), Some(v));
        }
    }

    #[test]
    fn htm_transactions_apply_ops_atomically_or_not_at_all(
        ops in prop::collection::vec(op_strategy(32), 1..60),
        commit in any::<bool>(),
    ) {
        // Run the whole op sequence inside one HTM transaction; on commit
        // the model must match, on abort the memory must be untouched.
        let mem = Arc::new(SharedMem::new_lines(16 * 1024));
        let cfg = HtmConfig { htm_read_capacity: 100_000, htm_write_capacity: 100_000, ..HtmConfig::default() };
        let rt = HtmRuntime::new(Arc::clone(&mem), cfg);
        let alloc = SimAlloc::new(mem);
        let map = SimHashMap::create(&alloc, 4).unwrap();
        // Pre-allocate nodes outside the transaction.
        let nodes: Vec<_> = ops
            .iter()
            .map(|op| match *op {
                Op::Insert(k, v) => Some(map.make_node(&alloc, k, v).unwrap()),
                _ => None,
            })
            .collect();
        let mut ctx = rt.register();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut tx = ctx.begin(hrwle::htm::TxMode::Htm);
        for (op, node) in ops.iter().zip(&nodes) {
            match *op {
                Op::Insert(k, v) => {
                    map.insert(&mut tx, node.unwrap()).unwrap();
                    model.insert(k, v);
                }
                Op::Remove(k) => {
                    map.remove(&mut tx, k).unwrap();
                    model.remove(&k);
                }
                Op::Lookup(k) => {
                    prop_assert_eq!(map.lookup(&mut tx, k).unwrap(), model.get(&k).copied());
                }
            }
        }
        if commit {
            tx.commit().unwrap();
            let mut nt = ctx.non_tx();
            prop_assert_eq!(map.len(&mut nt).unwrap(), model.len() as u64);
            for (&k, &v) in &model {
                prop_assert_eq!(map.lookup(&mut nt, k).unwrap(), Some(v));
            }
        } else {
            drop(tx); // rollback
            let mut nt = ctx.non_tx();
            prop_assert!(map.is_empty(&mut nt).unwrap(), "rollback left residue");
        }
    }
}
