//! Cross-scheme integration tests: every synchronization scheme must
//! produce the same observable results on the same workload.

use hrwle::workloads::driver::{
    run_kyoto, run_sensitivity, run_stmbench7, run_tpcc, Bench7Params, KyotoParams, Scenario,
    SensitivityParams, TpccParams,
};
use hrwle::workloads::tpcc::TpccScale;
use hrwle::workloads::SchemeKind;

const ALL_SCHEMES: [SchemeKind; 10] = [
    SchemeKind::RwLeOpt,
    SchemeKind::RwLePes,
    SchemeKind::RwLeHtmOnly,
    SchemeKind::RwLeFair,
    SchemeKind::Hle,
    SchemeKind::ScmHle,
    SchemeKind::AdaptiveHle,
    SchemeKind::BrLock,
    SchemeKind::Rwl,
    SchemeKind::Sgl,
];

#[test]
fn sensitivity_completes_under_all_schemes_and_scenarios() {
    for scenario in [Scenario::HcHc, Scenario::LcHc] {
        for scheme in ALL_SCHEMES {
            let r = run_sensitivity(&SensitivityParams {
                scheme,
                scenario,
                write_pct: 30,
                threads: 3,
                ops_per_thread: 40,
                seed: 21,
                smt_group_size: 1,
            });
            assert_eq!(r.summary.ops, 120, "ops lost under {scheme:?}/{scenario:?}");
            assert_eq!(r.threads, 3);
            assert!(r.throughput() > 0.0);
        }
    }
}

#[test]
fn stmbench7_completes_under_all_schemes() {
    for scheme in ALL_SCHEMES {
        let r = run_stmbench7(&Bench7Params {
            scheme,
            write_pct: 30,
            threads: 2,
            ops_per_thread: 25,
            n_composite: 10,
            parts_per_composite: 60,
            seed: 22,
        });
        assert_eq!(r.summary.ops, 50, "ops lost under {scheme:?}");
    }
}

#[test]
fn kyoto_completes_under_all_schemes() {
    for scheme in ALL_SCHEMES {
        let r = run_kyoto(&KyotoParams {
            scheme,
            write_permille: 100,
            threads: 2,
            ops_per_thread: 50,
            n_slots: 4,
            buckets_per_slot: 8,
            initial_items: 128,
            seed: 23,
        });
        assert_eq!(r.summary.ops, 100, "ops lost under {scheme:?}");
    }
}

#[test]
fn tpcc_completes_under_all_schemes() {
    for scheme in ALL_SCHEMES {
        let r = run_tpcc(&TpccParams {
            scheme,
            write_pct: 30,
            threads: 2,
            ops_per_thread: 40,
            scale: TpccScale {
                warehouses: 1,
                customers_per_district: 10,
                items: 100,
            },
            seed: 24,
        });
        assert_eq!(r.summary.ops, 80, "ops lost under {scheme:?}");
    }
}

#[test]
fn rwle_commit_paths_match_variant_semantics() {
    // OPT must use HTM and/or ROT; PES must never commit writers in HTM.
    let opt = run_sensitivity(&SensitivityParams {
        scheme: SchemeKind::RwLeOpt,
        scenario: Scenario::LcHc,
        write_pct: 50,
        threads: 2,
        ops_per_thread: 100,
        seed: 25,
        smt_group_size: 1,
    });
    assert!(opt.summary.commits(hrwle::stats::CommitKind::Htm) > 0);

    let pes = run_sensitivity(&SensitivityParams {
        scheme: SchemeKind::RwLePes,
        scenario: Scenario::LcHc,
        write_pct: 50,
        threads: 2,
        ops_per_thread: 100,
        seed: 25,
        smt_group_size: 1,
    });
    assert_eq!(pes.summary.commits(hrwle::stats::CommitKind::Htm), 0);
    assert!(pes.summary.commits(hrwle::stats::CommitKind::Rot) > 0);

    // Both run all reads uninstrumented.
    for r in [&opt, &pes] {
        assert!(r.summary.commits(hrwle::stats::CommitKind::Uninstrumented) > 0);
    }
}

#[test]
fn hle_never_reports_uninstrumented_commits() {
    let r = run_sensitivity(&SensitivityParams {
        scheme: SchemeKind::Hle,
        scenario: Scenario::LcHc,
        write_pct: 10,
        threads: 2,
        ops_per_thread: 100,
        seed: 26,
        smt_group_size: 1,
    });
    assert_eq!(
        r.summary.commits(hrwle::stats::CommitKind::Uninstrumented),
        0,
        "classic HLE instruments every critical section"
    );
    assert_eq!(r.summary.commits(hrwle::stats::CommitKind::Rot), 0);
}
