//! Offline stand-in for the `proptest` crate (API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the slice of proptest it uses: the [`proptest!`] macro,
//! [`prop_assert!`]/[`prop_assert_eq!`], [`prop_oneof!`], [`arbitrary::any`],
//! integer-range and tuple strategies, [`collection::vec`], `prop_map`,
//! and [`ProptestConfig::with_cases`].
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports its case index and seed;
//!   re-running is fully deterministic, which substitutes for a minimal
//!   counterexample in this closed environment.
//! * **Fixed derived seeds.** Case `i` of test `name` always uses the
//!   same RNG stream, so failures reproduce across runs and machines.

#![warn(missing_docs)]

use std::fmt::Debug;

pub use rand::rngs::SmallRng as TestRng;
use rand::Rng;

/// Run-time configuration for a [`proptest!`] block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Test-runner support (mirrors `proptest::test_runner`).
pub mod test_runner {
    pub use super::ProptestConfig as Config;

    /// Derives the deterministic RNG for one case of one test.
    pub fn case_rng(test_name: &str, case: u32) -> super::TestRng {
        use rand::SeedableRng;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        super::TestRng::seed_from_u64(h)
    }
}

/// Generation strategies (mirrors `proptest::strategy`).
pub mod strategy {
    use super::*;

    /// A source of random values of one type.
    ///
    /// Unlike real proptest there is no value tree: strategies sample
    /// directly and never shrink.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value: Debug;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V: Debug> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Weighted union of strategies; built by [`prop_oneof!`](crate::prop_oneof).
    pub struct OneOf<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> OneOf<V> {
        /// Builds a union from `(weight, strategy)` arms.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            OneOf { arms, total }
        }
    }

    impl<V: Debug> Strategy for OneOf<V> {
        type Value = V;
        fn sample(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.sample(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights changed mid-sample")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

/// `any::<T>()` support (mirrors `proptest::arbitrary`).
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::*;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Debug + Sized {
        /// Draws a uniformly random value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Strategy generating any value of `T`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }
}

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::*;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is uniform in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = if self.size.start < self.size.end {
                rng.gen_range(self.size.clone())
            } else {
                self.size.start
            };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Namespaced re-exports, used as `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::{arbitrary, collection, strategy};
}

/// The catch-all import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (or unweighted) union of strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...)` runs its
/// body for many generated inputs.
///
/// On failure the panic message is prefixed (via stderr) with the test
/// name, case index, and derived seed; re-running is deterministic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut __ptrng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $pat = $crate::strategy::Strategy::sample(&($strat), &mut __ptrng);)+
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(cause) = outcome {
                    eprintln!(
                        "proptest {}: case {}/{} failed (deterministic; rerun reproduces it)",
                        stringify!($name), case, cfg.cases,
                    );
                    std::panic::resume_unwind(cause);
                }
            }
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, y in 5u64..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((5..=9).contains(&y));
        }

        #[test]
        fn vec_and_tuples_compose(
            v in prop::collection::vec((0u32..8, any::<bool>()), 0..20),
        ) {
            prop_assert!(v.len() < 20);
            for (k, _b) in v {
                prop_assert!(k < 8);
            }
        }

        #[test]
        fn oneof_honors_arms(op in prop_oneof![2 => Just(1u8), 1 => Just(2u8)]) {
            prop_assert!(op == 1 || op == 2);
        }

        #[test]
        fn prop_map_applies(s in (0u32..10).prop_map(|v| v * 3)) {
            prop_assert_eq!(s % 3, 0);
            prop_assert!(s < 30);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        use crate::strategy::Strategy;
        assert_eq!((0u64..100).sample(&mut a), (0u64..100).sample(&mut b));
    }
}
