//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the narrow slice of the `rand` API its tests and benchmarks
//! actually use: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`],
//! [`Rng::gen`], [`Rng::gen_range`] and [`Rng::gen_bool`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — the same
//! construction real `rand` uses for `SmallRng` on 64-bit targets. The
//! exact streams differ from upstream `rand`; nothing in this repository
//! depends on the specific values, only on seeded determinism.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly at random by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)`. Panics if empty.
    fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Draws from `[lo, hi]`. Panics if empty.
    fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_excl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                ((lo as $wide).wrapping_add((rng.next_u64() % span) as $wide)) as $t
            }

            #[inline]
            fn sample_incl<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                ((lo as $wide).wrapping_add((rng.next_u64() % span) as $wide)) as $t
            }
        }
    )*};
}
impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_excl(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_incl(rng, *self.start(), *self.end())
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::draw(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Small, fast generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind `rand`'s 64-bit `SmallRng`.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as specified by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = r.gen_range(5..=5);
            assert_eq!(w, 5);
            let u: usize = r.gen_range(0..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = SmallRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
    }

    #[test]
    fn distinct_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let av: u64 = a.gen();
        let bv: u64 = b.gen();
        assert_ne!(av, bv);
    }
}
