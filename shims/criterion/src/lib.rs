//! Offline stand-in for the `criterion` crate (API subset).
//!
//! The build environment has no crates.io access, so this workspace
//! vendors the narrow slice of Criterion its benchmarks use:
//! [`Criterion::benchmark_group`] / [`Criterion::bench_function`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Timing methodology is intentionally simple — a short calibrated warm-up
//! followed by one timed batch, reporting mean ns/iter to stdout. It is
//! good enough for the CI smoke run (`cargo bench -- --test` executes each
//! benchmark body once) and for coarse local comparisons; it does not do
//! outlier analysis or statistical resampling.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Drives one benchmark's iterations.
pub struct Bencher {
    /// `--test` mode: run the body once, skip timing.
    smoke: bool,
    /// Filled by [`Bencher::iter`] for the caller to report.
    result: Option<Duration>,
    iters: u64,
}

impl Bencher {
    /// Times `f`, storing the mean per-iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.result = Some(Duration::ZERO);
            self.iters = 1;
            return;
        }
        // Calibrate: grow the batch until it runs for ~5ms.
        let mut batch: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= (1 << 24) {
                self.result = Some(elapsed);
                self.iters = batch;
                return;
            }
            batch *= 2;
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    smoke: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut smoke = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => smoke = true,
                "--bench" => {}
                s if !s.starts_with('-') => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion { smoke, filter }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        run_one(&id, self.smoke, self.filter.as_deref(), f);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark inside this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        run_one(&id, self.c.smoke, self.c.filter.as_deref(), f);
        self
    }

    /// Ends the group (report flushing is a no-op here).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, smoke: bool, filter: Option<&str>, mut f: F) {
    if let Some(filter) = filter {
        if !id.contains(filter) {
            return;
        }
    }
    let mut b = Bencher {
        smoke,
        result: None,
        iters: 0,
    };
    f(&mut b);
    match (smoke, b.result) {
        (true, Some(_)) => println!("bench {id}: ok (smoke)"),
        (false, Some(elapsed)) => {
            let per_iter = elapsed.as_nanos() as f64 / b.iters.max(1) as f64;
            println!("bench {id}: {per_iter:.1} ns/iter ({} iters)", b.iters);
        }
        (_, None) => println!("bench {id}: no measurement (Bencher::iter not called)"),
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_body_once() {
        let mut runs = 0;
        let mut b = Bencher {
            smoke: true,
            result: None,
            iters: 0,
        };
        b.iter(|| runs += 1);
        assert_eq!(runs, 1);
        assert_eq!(b.iters, 1);
    }

    #[test]
    fn measurement_calibrates_batches() {
        let mut b = Bencher {
            smoke: false,
            result: None,
            iters: 0,
        };
        b.iter(|| std::hint::black_box(3u64.wrapping_mul(7)));
        assert!(b.iters >= 1);
        assert!(b.result.is_some());
    }
}
